"""Descriptor-driven algorithm registry: one dispatch layer for SHE.

The paper's point is that SHE is *generic* — any ⟨C, K, F⟩ CSM sketch
lifts to sliding windows — and this module is where the codebase honours
that beyond the single-sketch layer.  An :class:`AlgoDescriptor` bundles
everything the surrounding system needs to treat an algorithm uniformly:

* its short engine ``kind`` and sketch class,
* the :class:`~repro.core.csm.CsmSpec` (when one exists),
* the constructor's size-argument name and a ``build`` factory,
* the cell-merge operator (derived from the spec's
  :class:`~repro.core.csm.UpdateKind` unless overridden) and the merge
  compatibility ``signature``,
* which typed queries it answers and how the engine fans a query across
  shards (``merge`` the snapshots vs ``sum`` per-shard estimates),
* serialize/deserialize hooks (``to_state`` / ``from_state``),
* memory-budget sizing (``from_memory``).

:func:`register_algorithm` installs a descriptor process-wide;
:func:`get_descriptor` / :func:`descriptor_of` look it up by kind string,
persisted class name, class, or instance.  The five paper algorithms are
registered at import, as is the ``"generic"`` lifting — so
``StreamEngine(kind="my-custom-csm")``, :mod:`repro.core.merge`,
:mod:`repro.persist` and the harness builders all work for a
user-registered algorithm without touching any of those modules.

This is deliberately the *only* module allowed to dispatch on concrete
SHE sketch classes; a CI lint (and ``tests/test_dispatch_lint.py``)
rejects ``isinstance(x, She...)`` anywhere else under ``src/``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.core.csm import CellType, CsmSpec, UpdateKind
from repro.core.generic import GenericSheSketch
from repro.core.hardware_frame import HardwareFrame
from repro.core.she_bf import SheBloomFilter
from repro.core.she_bm import SheBitmap
from repro.core.she_cm import SheCountMin
from repro.core.she_hll import SheHyperLogLog
from repro.core.she_mh import SheMinHash

__all__ = [
    "AlgoDescriptor",
    "register_algorithm",
    "unregister_algorithm",
    "get_descriptor",
    "descriptor_of",
    "registered_kinds",
    "cell_merge_for",
    "GENERIC_KIND",
]

GENERIC_KIND = "generic"


def _merge_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a + b


#: the cell-wise combine each update function admits: the merge of two
#: substream sketches is exact iff the combine distributes over F.
_UPDATE_MERGE: dict[UpdateKind, Callable] = {
    UpdateKind.SET_ONE: np.maximum,   # OR on 0/1 bits
    UpdateKind.MAX_RANK: np.maximum,  # max rank
    UpdateKind.ADD_ONE: _merge_add,   # counts add
    UpdateKind.MIN_HASH: np.minimum,  # min hash values
}


def cell_merge_for(update: UpdateKind) -> Callable:
    """The cell-wise merge operator implied by an update function."""
    try:
        return _UPDATE_MERGE[update]
    except KeyError:  # pragma: no cover - UpdateKind is closed
        raise ValueError(f"no merge operator for update kind {update!r}")


# -- frame (de)serialisation helpers ------------------------------------------


def frame_kind(frame) -> str:
    """``"hardware"`` or ``"software"`` for a frame instance."""
    return "hardware" if isinstance(frame, HardwareFrame) else "software"


def frame_state(frame, prefix: str, arrays: dict, meta: dict) -> None:
    """Record one frame's resumable state under ``prefix``."""
    arrays[f"{prefix}cells"] = frame.cells
    if isinstance(frame, HardwareFrame):
        arrays[f"{prefix}marks"] = frame.marks
    else:
        meta[f"{prefix}boundaries"] = frame._boundaries_done


def restore_frame(frame, prefix: str, data, meta: dict) -> None:
    """Restore what :func:`frame_state` recorded into a fresh frame."""
    frame.cells[:] = data[f"{prefix}cells"]
    if isinstance(frame, HardwareFrame):
        frame.marks[:] = data[f"{prefix}marks"]
    else:
        frame._boundaries_done = int(meta[f"{prefix}boundaries"])


# -- compatibility signatures -------------------------------------------------


def _single_frame_signature(desc: "AlgoDescriptor", sketch) -> tuple:
    cfg = sketch.config
    if hasattr(sketch, "hashes"):
        seeds = tuple(int(s) for s in sketch.hashes.seeds)
    else:
        seeds = tuple(int(s) for s in sketch._select.seeds) + tuple(
            int(s) for s in sketch._value.seeds
        )
    return (
        desc.class_name,
        cfg.window,
        cfg.t_cycle,
        cfg.group_width,
        sketch.frame.num_cells,
        type(sketch.frame).__name__,
        seeds,
        getattr(sketch, "spec", None),
    )


def _two_stream_signature(desc: "AlgoDescriptor", sketch) -> tuple:
    cfg = sketch.config
    seeds = tuple(int(s) for s in sketch._col_seeds[:4])
    return (desc.class_name, cfg.window, cfg.t_cycle, sketch.num_counters, seeds)


# -- default (de)serialisation hooks ------------------------------------------


def _default_apply_columnar(sketch, keys, times, side=None) -> None:
    """Feed one columnar flush batch to a single-stream sketch.

    Prefers the sketch's ``insert_at_columnar`` (the optimised
    :func:`repro.core.batch.apply_columnar` kernel); custom kinds
    without one keep working through the legacy ``insert_at``.
    """
    fast = getattr(sketch, "insert_at_columnar", None)
    if fast is not None:
        fast(keys, times)
    else:
        sketch.insert_at(keys, times)


def _two_stream_apply_columnar(sketch, keys, times, side=None) -> None:
    """Two-stream (SHE-MH shape) columnar flush entry."""
    s = 0 if side is None else side
    fast = getattr(sketch, "insert_at_columnar", None)
    if fast is not None:
        fast(s, keys, times)
    else:
        sketch.insert_at(s, keys, times)


def _default_to_state(desc: "AlgoDescriptor", sketch) -> tuple[dict, dict]:
    """Meta fields + arrays for a single-frame sketch built as
    ``cls(window, size, *, alpha, beta, group_width, frame, seed)``.

    This covers :class:`GenericSheSketch` subclasses out of the box; the
    five named classes override it to keep their archive layout
    byte-identical with the pre-registry format.
    """
    cfg = sketch.config
    params = {
        "window": cfg.window,
        "alpha": cfg.alpha,
        "beta": cfg.beta,
        desc.size_arg: sketch.frame.num_cells,
        "group_width": cfg.group_width,
        "seed": sketch.hashes.seed,
    }
    spec = getattr(sketch, "spec", None)
    if spec is not None:
        params["spec"] = spec_to_json(spec)
    meta = {
        "params": params,
        "frame": frame_kind(sketch.frame),
        "t": sketch.t,
    }
    arrays: dict = {}
    frame_state(sketch.frame, "f_", arrays, meta)
    return meta, arrays


def _default_from_state(desc: "AlgoDescriptor", meta: dict, data):
    params = dict(meta["params"])
    params.pop("spec", None)  # the class bakes its own spec in
    window = params.pop("window")
    size = params.pop(desc.size_arg)
    sketch = desc.build(window, size, frame=meta["frame"], **params)
    sketch.t = int(meta["t"])
    restore_frame(sketch.frame, "f_", data, meta)
    return sketch


def spec_to_json(spec: CsmSpec) -> dict:
    """A JSON-safe rendering of a ⟨C, K, F⟩ spec (for archives)."""
    return {
        "name": spec.name,
        "cell_type": spec.cell_type.value,
        "locations": spec.locations,
        "update": spec.update.value,
        "default_cell_bits": spec.default_cell_bits,
        "empty_value": spec.empty_value,
        "one_sided": spec.one_sided,
    }


def spec_from_json(data: dict) -> CsmSpec:
    """Rebuild a :class:`CsmSpec` recorded by :func:`spec_to_json`."""
    return CsmSpec(
        name=data["name"],
        cell_type=CellType(data["cell_type"]),
        locations=data["locations"],
        update=UpdateKind(data["update"]),
        default_cell_bits=int(data["default_cell_bits"]),
        empty_value=int(data["empty_value"]),
        one_sided=bool(data["one_sided"]),
    )


# -- the descriptor -----------------------------------------------------------


@dataclass(frozen=True)
class AlgoDescriptor:
    """Everything the framework needs to dispatch one algorithm.

    Attributes:
        kind: short engine/CLI kind string (``"bf"``, ``"cm"``, ...).
        cls: the sketch class.
        size_arg: the constructor's size-parameter name (``num_bits``,
            ``num_registers``, ``num_counters``, ``num_cells``).
        spec: the ⟨C, K, F⟩ CSM spec, when the algorithm has one.
        class_name: the kind string persisted in archives (defaults to
            ``cls.__name__``; must stay stable across renames).
        two_stream: True for two-stream sketches (SHE-MH shape): two
            frames, per-side clocks, ``insert_at(side, keys, times)``.
        cell_merge: cell-wise combine for same-config merges; derived
            from ``spec.update`` when omitted.
        queries: typed queries the algorithm answers (``"membership"``,
            ``"cardinality"``, ``"frequency"``, ``"similarity"``).
        query_fanin: how the engine answers a query across shards —
            ``"merge"`` combines aligned snapshots into one sketch,
            ``"sum"`` adds per-shard estimates (Count-Min: summation
            preserves the never-underestimate guarantee that a
            min-over-merged-counters would dilute).
        degraded_caveat: what guarantee missing shards cost a
            ``strict=False`` query (:class:`DegradedAnswer.caveat`).
        shed_caveat: what guarantee is lost when admission control shed
            arrivals inside the current window (overload policies
            ``"shed_oldest"`` / ``"shed_newest"``) — the shed keys are
            simply absent from the sketch, which costs the same class
            of guarantee as a missing shard but only for the shed
            items, not the shard's whole key range.
        build: factory ``build(window, size, **sketch_kwargs)``;
            defaults to ``cls(window, size, **sketch_kwargs)``.
        from_memory: budget sizing ``(window, memory_bytes, **kwargs)``;
            defaults to ``cls.from_memory``.
        signature: merge-compatibility key of one sketch instance;
            merges are allowed only between equal signatures.
        to_state: ``(descriptor, sketch) -> (meta_fields, arrays)`` for
            :func:`repro.persist.save_sketch`.
        from_state: ``(descriptor, meta, npz_data) -> sketch`` for
            :func:`repro.persist.load_sketch`.
        apply_columnar: ``(sketch, keys, times, side) -> None`` — how
            executors feed one columnar flush batch to the sketch.  The
            default routes through ``insert_at_columnar`` (the optimised
            :func:`repro.core.batch.apply_columnar` kernel) when the
            sketch provides it, falling back to the legacy ``insert_at``
            for custom kinds that predate the columnar path.  Results
            must be bit-identical to ``insert_at``.
    """

    kind: str
    cls: type
    size_arg: str
    spec: CsmSpec | None = None
    class_name: str = ""
    two_stream: bool = False
    cell_merge: Callable | None = None
    queries: frozenset = frozenset()
    query_fanin: str = "merge"
    degraded_caveat: str = (
        "missing shards' keys are unrepresented; per-key and aggregate "
        "answers may be incomplete"
    )
    shed_caveat: str = (
        "overload shedding dropped arrivals inside the current window; "
        "answers undercount the shed items"
    )
    build: Callable | None = None
    from_memory: Callable | None = None
    signature: Callable | None = None
    to_state: Callable | None = None
    from_state: Callable | None = None
    apply_columnar: Callable | None = None

    def __post_init__(self) -> None:
        if not self.kind:
            raise ValueError("descriptor needs a non-empty kind string")
        if self.query_fanin not in ("merge", "sum"):
            raise ValueError(
                f"query_fanin must be 'merge' or 'sum', got {self.query_fanin!r}"
            )
        if not self.class_name:
            object.__setattr__(self, "class_name", self.cls.__name__)
        if self.cell_merge is None and self.spec is not None:
            object.__setattr__(self, "cell_merge", cell_merge_for(self.spec.update))
        if self.build is None:
            cls = self.cls
            object.__setattr__(
                self, "build", lambda window, size, **kw: cls(window, size, **kw)
            )
        if self.from_memory is None and hasattr(self.cls, "from_memory"):
            object.__setattr__(self, "from_memory", self.cls.from_memory)
        if self.signature is None:
            object.__setattr__(
                self,
                "signature",
                (_two_stream_signature if self.two_stream else _single_frame_signature),
            )
        if self.to_state is None:
            object.__setattr__(self, "to_state", _default_to_state)
        if self.from_state is None:
            object.__setattr__(self, "from_state", _default_from_state)
        if self.apply_columnar is None:
            object.__setattr__(
                self,
                "apply_columnar",
                (
                    _two_stream_apply_columnar
                    if self.two_stream
                    else _default_apply_columnar
                ),
            )
        object.__setattr__(self, "queries", frozenset(self.queries))

    # bound conveniences so call sites read naturally ------------------------

    def merge_signature(self, sketch) -> tuple:
        return self.signature(self, sketch)

    def caveat(self, *, missing: bool = False, shed: bool = False) -> str | None:
        """The caveat a ``strict=False`` answer should carry.

        The engine's degraded-query path calls this with whether shards
        were missing from the fan-in and whether any answering shard
        shed arrivals inside the current window; both can hold at once,
        in which case the caveats concatenate.
        """
        parts = []
        if missing:
            parts.append(self.degraded_caveat)
        if shed:
            parts.append(self.shed_caveat)
        return "; ".join(parts) if parts else None

    def sketch_state(self, sketch) -> tuple[dict, dict]:
        return self.to_state(self, sketch)

    def sketch_from_state(self, meta: dict, data):
        return self.from_state(self, meta, data)


# -- the process-wide registry ------------------------------------------------

_BY_KIND: dict[str, AlgoDescriptor] = {}
_BY_CLASS: dict[type, AlgoDescriptor] = {}
_BY_CLASS_NAME: dict[str, AlgoDescriptor] = {}


def register_algorithm(descriptor: AlgoDescriptor, *, replace_existing: bool = False) -> AlgoDescriptor:
    """Install a descriptor process-wide; returns it for chaining.

    Registration makes the algorithm mergeable
    (:mod:`repro.core.merge`), serialisable (:mod:`repro.persist`),
    servable (``StreamEngine(kind=...)`` with sharding, checkpoints,
    supervision and probes) and buildable by the harness.  See
    ``docs/extending.md`` for the walkthrough.
    """
    taken = _BY_KIND.get(descriptor.kind) or _BY_CLASS_NAME.get(descriptor.class_name)
    if taken is not None and not replace_existing and taken.cls is not descriptor.cls:
        raise ValueError(
            f"kind {descriptor.kind!r} / class name {descriptor.class_name!r} "
            f"is already registered for {taken.cls.__name__}; pass "
            "replace_existing=True to override"
        )
    _BY_KIND[descriptor.kind] = descriptor
    _BY_CLASS[descriptor.cls] = descriptor
    _BY_CLASS_NAME[descriptor.class_name] = descriptor
    return descriptor


def unregister_algorithm(kind: str) -> None:
    """Remove a registered kind (tests and REPL experiments)."""
    desc = _BY_KIND.pop(kind, None)
    if desc is None:
        return
    if _BY_CLASS.get(desc.cls) is desc:
        del _BY_CLASS[desc.cls]
    if _BY_CLASS_NAME.get(desc.class_name) is desc:
        del _BY_CLASS_NAME[desc.class_name]


def registered_kinds() -> list[str]:
    """All registered kind strings, sorted."""
    return sorted(_BY_KIND)


def get_descriptor(kind: str) -> AlgoDescriptor:
    """Descriptor for a kind string or persisted class name (raises)."""
    desc = _BY_KIND.get(kind) or _BY_CLASS_NAME.get(kind)
    if desc is None:
        raise KeyError(
            f"no algorithm registered for kind {kind!r}; registered kinds: "
            f"{registered_kinds()} (see register_algorithm / docs/extending.md)"
        )
    return desc


def descriptor_of(obj) -> AlgoDescriptor | None:
    """Descriptor for a sketch class or instance; None if unregistered."""
    cls = obj if isinstance(obj, type) else type(obj)
    return _BY_CLASS.get(cls)


def require_descriptor(obj) -> AlgoDescriptor:
    """Like :func:`descriptor_of` but raises a helpful TypeError."""
    desc = descriptor_of(obj)
    if desc is None:
        cls = obj if isinstance(obj, type) else type(obj)
        raise TypeError(
            f"{cls.__name__} is not a registered SHE algorithm; register it "
            "with repro.core.registry.register_algorithm (docs/extending.md)"
        )
    return desc


# -- built-in (de)serialisation hooks -----------------------------------------
#
# These reproduce the pre-registry persist.py layout byte-for-byte: the
# same meta key order, the same params per class, the same array names —
# so checkpoints written before the refactor still load and checkpoints
# written after it are bit-identical.


def _bf_to_state(desc, sketch) -> tuple[dict, dict]:
    cfg = sketch.config
    meta = {
        "params": {
            "window": cfg.window,
            "alpha": cfg.alpha,
            "beta": cfg.beta,
            "num_bits": sketch.num_bits,
            "num_hashes": sketch.num_hashes,
            "group_width": cfg.group_width,
            "seed": sketch.hashes.seed,
        },
        "frame": frame_kind(sketch.frame),
        "t": sketch.t,
    }
    arrays: dict = {}
    frame_state(sketch.frame, "f_", arrays, meta)
    return meta, arrays


def _bf_from_state(desc, meta, data):
    params = dict(meta["params"])
    params.pop("beta", None)  # BF has no legal band
    window = params.pop("window")
    sketch = desc.build(window, params.pop("num_bits"), frame=meta["frame"], **params)
    sketch.t = int(meta["t"])
    restore_frame(sketch.frame, "f_", data, meta)
    return sketch


def _bm_to_state(desc, sketch) -> tuple[dict, dict]:
    cfg = sketch.config
    meta = {
        "params": {
            "window": cfg.window,
            "alpha": cfg.alpha,
            "beta": cfg.beta,
            "num_bits": sketch.num_bits,
            "group_width": cfg.group_width,
            "seed": sketch.hashes.seed,
        },
        "frame": frame_kind(sketch.frame),
        "t": sketch.t,
    }
    arrays: dict = {}
    frame_state(sketch.frame, "f_", arrays, meta)
    return meta, arrays


def _bm_from_state(desc, meta, data):
    params = dict(meta["params"])
    window = params.pop("window")
    sketch = desc.build(window, params.pop("num_bits"), frame=meta["frame"], **params)
    sketch.t = int(meta["t"])
    restore_frame(sketch.frame, "f_", data, meta)
    return sketch


def _hll_to_state(desc, sketch) -> tuple[dict, dict]:
    cfg = sketch.config
    meta = {
        "params": {
            "window": cfg.window,
            "alpha": cfg.alpha,
            "beta": cfg.beta,
            "num_registers": sketch.num_registers,
        },
        "frame": frame_kind(sketch.frame),
        "t": sketch.t,
    }
    arrays: dict = {}
    frame_state(sketch.frame, "f_", arrays, meta)
    arrays["select_seeds"] = sketch._select.seeds.copy()
    arrays["value_seeds"] = sketch._value.seeds.copy()
    meta["params"]["seed"] = 0  # reconstructed from the stored seed arrays
    return meta, arrays


def _hll_from_state(desc, meta, data):
    params = dict(meta["params"])
    window = params.pop("window")
    sketch = desc.build(
        window,
        params.pop("num_registers"),
        alpha=params["alpha"],
        beta=params["beta"],
        frame=meta["frame"],
    )
    sketch._select._seeds[:] = data["select_seeds"]
    sketch._value._seeds[:] = data["value_seeds"]
    sketch.t = int(meta["t"])
    restore_frame(sketch.frame, "f_", data, meta)
    return sketch


def _cm_to_state(desc, sketch) -> tuple[dict, dict]:
    cfg = sketch.config
    meta = {
        "params": {
            "window": cfg.window,
            "alpha": cfg.alpha,
            "beta": cfg.beta,
            "num_counters": sketch.num_counters,
            "num_hashes": sketch.num_hashes,
            "group_width": cfg.group_width,
            "seed": sketch.hashes.seed,
        },
        "frame": frame_kind(sketch.frame),
        "t": sketch.t,
    }
    arrays: dict = {}
    frame_state(sketch.frame, "f_", arrays, meta)
    return meta, arrays


def _cm_from_state(desc, meta, data):
    params = dict(meta["params"])
    params.pop("beta", None)  # CM has no legal band
    window = params.pop("window")
    sketch = desc.build(window, params.pop("num_counters"), frame=meta["frame"], **params)
    sketch.t = int(meta["t"])
    restore_frame(sketch.frame, "f_", data, meta)
    return sketch


def _mh_to_state(desc, sketch) -> tuple[dict, dict]:
    cfg = sketch.config
    meta = {
        "params": {
            "window": cfg.window,
            "alpha": cfg.alpha,
            "beta": cfg.beta,
            "num_counters": sketch.num_counters,
        },
        "frame": frame_kind(sketch.frames[0]),
        "counts": list(sketch.counts),
        "seed_hint": "col_seeds stored",
    }
    arrays: dict = {"col_seeds": sketch._col_seeds}
    for side, frame in enumerate(sketch.frames):
        frame_state(frame, f"f{side}_", arrays, meta)
    return meta, arrays


def _mh_from_state(desc, meta, data):
    params = dict(meta["params"])
    window = params.pop("window")
    sketch = desc.build(
        window,
        params.pop("num_counters"),
        alpha=params["alpha"],
        beta=params["beta"],
        frame=meta["frame"],
    )
    sketch._col_seeds = data["col_seeds"].copy()
    sketch.counts = [int(c) for c in meta["counts"]]
    for side, frame in enumerate(sketch.frames):
        restore_frame(frame, f"f{side}_", data, meta)
    return sketch


# -- the generic lifting ------------------------------------------------------


def _generic_build(window, size, *, spec=None, **kwargs):
    if spec is None:
        raise ValueError(
            "the 'generic' kind needs a CsmSpec: pass "
            "sketch_kwargs={'spec': <CsmSpec>, ...} (or register a named "
            "algorithm — docs/extending.md)"
        )
    if isinstance(spec, Mapping):
        spec = spec_from_json(dict(spec))
    return GenericSheSketch(spec, window, size, **kwargs)


def _generic_to_state(desc, sketch) -> tuple[dict, dict]:
    cfg = sketch.config
    meta = {
        "params": {
            "window": cfg.window,
            "alpha": cfg.alpha,
            "beta": cfg.beta,
            "num_cells": sketch.num_cells_total,
            "group_width": cfg.group_width,
            "seed": sketch.hashes.seed,
            "spec": spec_to_json(sketch.spec),
        },
        "frame": frame_kind(sketch.frame),
        "t": sketch.t,
    }
    arrays: dict = {}
    frame_state(sketch.frame, "f_", arrays, meta)
    return meta, arrays


def _generic_from_state(desc, meta, data):
    params = dict(meta["params"])
    window = params.pop("window")
    size = params.pop("num_cells")
    sketch = desc.build(window, size, frame=meta["frame"], **params)
    sketch.t = int(meta["t"])
    restore_frame(sketch.frame, "f_", data, meta)
    return sketch


def _generic_from_memory(window, memory_bytes, *, spec=None, **kwargs):
    if spec is None:
        raise ValueError("generic from_memory needs a CsmSpec via spec=")
    return GenericSheSketch.from_memory(spec, window, memory_bytes, **kwargs)


# -- built-in registration ----------------------------------------------------

from repro.core.csm import (  # noqa: E402  (grouped with their use below)
    BITMAP_SPEC,
    BLOOM_FILTER_SPEC,
    COUNT_MIN_SPEC,
    HYPERLOGLOG_SPEC,
    MINHASH_SPEC,
)

register_algorithm(AlgoDescriptor(
    kind="bf",
    cls=SheBloomFilter,
    size_arg="num_bits",
    spec=BLOOM_FILTER_SPEC,
    queries=frozenset({"membership"}),
    degraded_caveat="missing shards may yield false negatives for keys they own",
    shed_caveat=(
        "shed arrivals inside the window may read as false negatives"
    ),
    to_state=_bf_to_state,
    from_state=_bf_from_state,
))

register_algorithm(AlgoDescriptor(
    kind="bm",
    cls=SheBitmap,
    size_arg="num_bits",
    spec=BITMAP_SPEC,
    queries=frozenset({"cardinality"}),
    degraded_caveat=(
        "cardinality is a lower bound: missing shards' keys are uncounted"
    ),
    shed_caveat=(
        "cardinality undercounts: shed arrivals inside the window are "
        "uncounted"
    ),
    to_state=_bm_to_state,
    from_state=_bm_from_state,
))

register_algorithm(AlgoDescriptor(
    kind="hll",
    cls=SheHyperLogLog,
    size_arg="num_registers",
    spec=HYPERLOGLOG_SPEC,
    queries=frozenset({"cardinality"}),
    degraded_caveat=(
        "cardinality is a lower bound: missing shards' keys are uncounted"
    ),
    shed_caveat=(
        "cardinality undercounts: shed arrivals inside the window are "
        "uncounted"
    ),
    to_state=_hll_to_state,
    from_state=_hll_from_state,
))

register_algorithm(AlgoDescriptor(
    kind="cm",
    cls=SheCountMin,
    size_arg="num_counters",
    spec=COUNT_MIN_SPEC,
    queries=frozenset({"frequency"}),
    query_fanin="sum",
    degraded_caveat=(
        "one-sided error is lost: keys owned by missing shards can be "
        "underestimated (down to zero)"
    ),
    shed_caveat=(
        "one-sided error is lost for shed arrivals: windowed counts of "
        "affected keys can be underestimated"
    ),
    to_state=_cm_to_state,
    from_state=_cm_from_state,
))

register_algorithm(AlgoDescriptor(
    kind="mh",
    cls=SheMinHash,
    size_arg="num_counters",
    spec=MINHASH_SPEC,
    two_stream=True,
    queries=frozenset({"similarity"}),
    degraded_caveat="similarity ignores the key subspace owned by missing shards",
    shed_caveat=(
        "similarity ignores arrivals shed inside the window on either "
        "stream"
    ),
    to_state=_mh_to_state,
    from_state=_mh_from_state,
))

register_algorithm(AlgoDescriptor(
    kind=GENERIC_KIND,
    cls=GenericSheSketch,
    size_arg="num_cells",
    # cell_merge resolves per instance from the spec at merge time
    cell_merge=None,
    build=_generic_build,
    from_memory=_generic_from_memory,
    to_state=_generic_to_state,
    from_state=_generic_from_state,
))
