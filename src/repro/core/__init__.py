"""The SHE framework: CSM model, cleaning frames and the five sketches."""

from repro.core.base import FrameKind, make_frame
from repro.core.batch import apply_batch
from repro.core.config import SheConfig
from repro.core.csm import (
    BITMAP_SPEC,
    BLOOM_FILTER_SPEC,
    COUNT_MIN_SPEC,
    HYPERLOGLOG_SPEC,
    MINHASH_SPEC,
    CellType,
    CsmSpec,
    UpdateKind,
)
from repro.core.generic import CellReadout, GenericSheSketch
from repro.core.hardware_frame import HardwareFrame
from repro.core.registry import (
    GENERIC_KIND,
    AlgoDescriptor,
    cell_merge_for,
    descriptor_of,
    get_descriptor,
    register_algorithm,
    registered_kinds,
    require_descriptor,
    unregister_algorithm,
)
from repro.core.she_bf import SheBloomFilter
from repro.core.she_bm import SheBitmap
from repro.core.she_cm import SheCountMin
from repro.core.she_hll import SheHyperLogLog, hll_alpha
from repro.core.she_mh import SheMinHash
from repro.core.software_frame import SoftwareFrame
from repro.core.merge import merge_many, merge_sketches, mergeable
from repro.core.timebase import TimedStream

__all__ = [
    "FrameKind",
    "make_frame",
    "apply_batch",
    "SheConfig",
    "CellType",
    "CsmSpec",
    "UpdateKind",
    "BLOOM_FILTER_SPEC",
    "BITMAP_SPEC",
    "HYPERLOGLOG_SPEC",
    "COUNT_MIN_SPEC",
    "MINHASH_SPEC",
    "CellReadout",
    "GenericSheSketch",
    "HardwareFrame",
    "SoftwareFrame",
    "SheBloomFilter",
    "SheBitmap",
    "SheCountMin",
    "SheHyperLogLog",
    "SheMinHash",
    "hll_alpha",
    "TimedStream",
    "merge_many",
    "merge_sketches",
    "mergeable",
    "AlgoDescriptor",
    "register_algorithm",
    "unregister_algorithm",
    "get_descriptor",
    "descriptor_of",
    "require_descriptor",
    "registered_kinds",
    "cell_merge_for",
    "GENERIC_KIND",
]
