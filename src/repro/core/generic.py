"""The generic face of the framework: lift any CSM sketch to windows.

The five named classes (:class:`SheBloomFilter` etc.) hard-code the
paper's query strategies; this module exposes the underlying lifting
for *any* ⟨C, K, F⟩ triple so downstream users can slide their own
CSM-shaped sketch.  ``GenericSheSketch`` handles hashing, the clock and
cleaning; the user supplies the query logic on top of
:meth:`read_cells`, which returns cell values together with their
age classification — everything §3.2's age-sensitive selection needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.hashing import HashFamily, leading_zeros_32
from repro.common.validation import as_key_array, require_positive_int
from repro.core.base import FrameKind, SheSketchBase, make_frame
from repro.core.batch import apply_batch
from repro.core.config import SheConfig
from repro.core.csm import CsmSpec, UpdateKind

__all__ = ["CellReadout", "GenericSheSketch"]


@dataclass(frozen=True)
class CellReadout:
    """What a query sees for each mapped cell of each queried key."""

    values: np.ndarray  # (n, k) cell contents
    ages: np.ndarray    # (n, k) cell ages in time units
    mature: np.ndarray  # (n, k) age >= N
    legal: np.ndarray   # (n, k) age >= beta*N


class GenericSheSketch(SheSketchBase):
    """SHE lifting of an arbitrary finite-K CSM sketch.

    Args:
        spec: the ⟨C, K, F⟩ description (``locations`` must be an int;
            MinHash-style "all" sketches need the dedicated
            :class:`~repro.core.she_mh.SheMinHash` chunking).
        window: sliding-window size N.
        num_cells: cell count M.
        alpha: cleaning stretch.
        group_width: hardware group width.
        beta: legal band lower fraction.
        frame: ``"hardware"`` or ``"software"``.
        seed: hash seed.
    """

    def __init__(
        self,
        spec: CsmSpec,
        window: int,
        num_cells: int,
        *,
        alpha: float = 0.2,
        group_width: int = 64,
        beta: float = 0.9,
        frame: FrameKind = "hardware",
        seed: int = 7,
    ):
        super().__init__()
        if not isinstance(spec.locations, int):
            raise ValueError(
                "GenericSheSketch supports finite K only; use SheMinHash "
                "for sketches that touch every cell"
            )
        self.spec = spec
        require_positive_int("num_cells", num_cells)
        self.config = SheConfig(
            window=window, alpha=alpha, group_width=group_width, beta=beta
        )
        m = (
            (num_cells // group_width) * group_width
            if frame == "hardware"
            else num_cells
        )
        if m < 1:
            raise ValueError(
                f"num_cells ({num_cells}) must fit at least one group of {group_width}"
            )
        self.num_cells_total = m
        dtype = np.uint8 if spec.default_cell_bits <= 8 else np.uint32
        self.hashes = HashFamily(spec.locations, seed=seed)
        self._value_hash = HashFamily(1, seed=seed ^ 0xABCDEF)
        self.frame = make_frame(
            frame,
            self.config,
            m,
            dtype=dtype,
            empty_value=spec.empty_value,
            cell_bits=spec.default_cell_bits,
        )

    @classmethod
    def from_memory(
        cls,
        spec: CsmSpec,
        window: int,
        memory_bytes: int,
        *,
        alpha: float = 0.2,
        group_width: int = 64,
        beta: float = 0.9,
        frame: FrameKind = "hardware",
        seed: int = 7,
    ) -> "GenericSheSketch":
        """Size the lifted sketch for a memory budget (cells + marks).

        Subclasses that bake their spec into ``__init__(window,
        num_cells, ...)`` should instead reuse the shared sizing:
        ``from_memory = classmethod(repro.core.base.sized_from_memory)``
        with a ``cell_bits`` class attribute.
        """
        cfg = SheConfig(window=window, alpha=alpha, group_width=group_width, beta=beta)
        m = cfg.cells_for_memory(memory_bytes, spec.default_cell_bits)
        return cls(
            spec,
            window,
            m,
            alpha=alpha,
            group_width=group_width,
            beta=beta,
            frame=frame,
            seed=seed,
        )

    def _operands(self, keys: np.ndarray) -> np.ndarray | None:
        """Per-key operand the update function consumes, if any."""
        if self.spec.update is UpdateKind.MAX_RANK:
            return leading_zeros_32(self._value_hash.values(keys)[:, 0]) + 1
        if self.spec.update is UpdateKind.MIN_HASH:
            mask = np.uint64((1 << self.spec.default_cell_bits) - 1)
            return (self._value_hash.values(keys)[:, 0] & mask).astype(np.uint64)
        return None

    def _touch_columns(self, keys: np.ndarray, times: np.ndarray):
        k = self.spec.locations
        idx = self.hashes.indices(keys, self.num_cells_total)
        ops = self._operands(keys)
        touch_times = np.repeat(times, k)
        touch_ops = None if ops is None else np.repeat(ops, k)
        return touch_times, idx.reshape(-1), touch_ops, self.spec.update

    def _insert_at(self, keys: np.ndarray, times: np.ndarray) -> None:
        apply_batch(self.frame, *self._touch_columns(keys, times))

    def read_cells(self, keys, t: int | None = None) -> CellReadout:
        """Cleaned cell contents + age classification for queried keys."""
        t = self._resolve_time(t)
        keys = as_key_array(keys)
        idx = self.hashes.indices(keys, self.num_cells_total)
        flat = idx.reshape(-1)
        self.frame.prepare_query(flat, t)
        shape = idx.shape
        return CellReadout(
            values=self.frame.cells[flat].reshape(shape).copy(),
            ages=self.frame.ages(flat, t).reshape(shape),
            mature=self.frame.mature_mask(flat, t).reshape(shape),
            legal=self.frame.legal_mask(flat, t).reshape(shape),
        )

    @property
    def memory_bytes(self) -> int:
        return self.frame.memory_bytes

    def reset(self) -> None:
        """Clear all state and rewind the clock."""
        self.frame.reset()
        self.t = 0
