"""Merging SHE sketches — distributed sliding-window monitoring.

The fixed-window originals are all mergeable (OR bits, max registers,
sum counters, min hashes), which is how distributed deployments
aggregate per-link monitors into one view.  SHE preserves mergeability
*provided the clocks align*: two sketches observing substreams of the
same time axis (e.g. two switch ports timestamped by a shared counter)
have identical group offsets, cycle lengths and virtual ages, so after
forcing both frames to their common query time the cell-wise combine of
the originals is exactly the SHE sketch of the union stream.

What cannot merge: sketches with different windows, alphas, sizes or
hash seeds (the combine would be meaningless), or count-based clocks
that drifted apart (ages would disagree); :func:`merge_sketches`
rejects all of those loudly.

Caveat (documented, tested): lazy cleaning means a group may be stale
in one operand and fresh in the other; forcing ``prepare_query_all`` at
the common time before combining resolves every mark, so the merge is
exact *when every group is touched at least once per cycle in each
substream* — Eq. 1's condition, comfortably true for the grouped
sketches (w = 64).  For the w = 1 sketches (HLL, MinHash) a substream
can skip a register across two mark flips and retain stale content the
union stream would have cleaned; the deviation is one-sided (stale
cells only inflate max-combines) and vanishes in the paper's
C >> M operating regime.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.core.she_bf import SheBloomFilter
from repro.core.she_bm import SheBitmap
from repro.core.she_cm import SheCountMin
from repro.core.she_hll import SheHyperLogLog
from repro.core.she_mh import SheMinHash

__all__ = ["merge_sketches", "mergeable"]

_COMBINE = {
    SheBloomFilter: np.maximum,   # OR on 0/1 bits
    SheBitmap: np.maximum,        # OR on 0/1 bits
    SheHyperLogLog: np.maximum,   # max rank
    SheCountMin: lambda a, b: a + b,  # counts add
    SheMinHash: np.minimum,       # min hash values
}


def _config_key(sketch) -> tuple:
    cfg = sketch.config
    if isinstance(sketch, SheMinHash):
        seeds = tuple(int(s) for s in sketch._col_seeds[:4])
        return (type(sketch), cfg.window, cfg.t_cycle, sketch.num_counters, seeds)
    cells = sketch.frame.num_cells
    seeds = tuple(int(s) for s in sketch.hashes.seeds) if hasattr(sketch, "hashes") else (
        tuple(int(s) for s in sketch._select.seeds) + tuple(int(s) for s in sketch._value.seeds)
    )
    return (
        type(sketch),
        cfg.window,
        cfg.t_cycle,
        cfg.group_width,
        cells,
        type(sketch.frame).__name__ if not isinstance(sketch, SheMinHash) else None,
        seeds,
    )


def mergeable(a, b) -> bool:
    """True iff ``a`` and ``b`` are combinable (same type, geometry, seeds)."""
    if type(a) is not type(b) or type(a) not in _COMBINE:
        return False
    try:
        return _config_key(a) == _config_key(b)
    except AttributeError:
        return False


def merge_sketches(a, b, *, t: int | None = None):
    """Merge ``b`` into a *new* sketch equal to observing both streams.

    Args:
        a, b: two SHE sketches of identical type/configuration whose
            clocks refer to the same time axis.
        t: the common query time; defaults to the later clock.  Both
            operands' frames are brought to ``t`` before combining.

    Returns:
        A new sketch (a's type) positioned at time ``t``.
    """
    if not mergeable(a, b):
        raise ValueError(
            f"cannot merge {type(a).__name__} with {type(b).__name__}: "
            "types, geometry, frame kind and hash seeds must all match"
        )
    combine = _COMBINE[type(a)]

    if isinstance(a, SheMinHash):
        t0 = t if t is not None else max(a.counts[0], b.counts[0])
        t1 = t if t is not None else max(a.counts[1], b.counts[1])
        out = copy.deepcopy(a)
        for side, tt in ((0, t0), (1, t1)):
            a.frames[side].prepare_query_all(tt)
            b.frames[side].prepare_query_all(tt)
            out.frames[side].prepare_query_all(tt)
            out.frames[side].cells[:] = combine(
                a.frames[side].cells, b.frames[side].cells
            )
            if hasattr(out.frames[side], "marks"):
                out.frames[side].marks[:] = a.frames[side].marks
        out.counts = [t0, t1]
        return out

    tt = t if t is not None else max(a.t, b.t)
    out = copy.deepcopy(a)
    for s in (a, b, out):
        s.frame.prepare_query_all(tt)
    out.frame.cells[:] = combine(a.frame.cells, b.frame.cells)
    if hasattr(out.frame, "marks"):
        out.frame.marks[:] = a.frame.marks  # identical after prepare at tt
    out.t = tt
    return out
