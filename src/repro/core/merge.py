"""Merging SHE sketches — distributed sliding-window monitoring.

The fixed-window originals are all mergeable (OR bits, max registers,
sum counters, min hashes), which is how distributed deployments
aggregate per-link monitors into one view.  SHE preserves mergeability
*provided the clocks align*: two sketches observing substreams of the
same time axis (e.g. two switch ports timestamped by a shared counter)
have identical group offsets, cycle lengths and virtual ages, so after
forcing both frames to their common query time the cell-wise combine of
the originals is exactly the SHE sketch of the union stream.

Which combine applies is not decided here: every registered algorithm's
:class:`~repro.core.registry.AlgoDescriptor` carries its cell-merge
operator (derived from the CSM spec's
:class:`~repro.core.csm.UpdateKind`) and its compatibility *signature*
(type, geometry, frame kind, hash seeds), so a user-registered CSM
sketch merges through the same code path as the five paper algorithms.

What cannot merge: sketches with different windows, alphas, sizes or
hash seeds (the combine would be meaningless), unregistered types, or
count-based clocks that drifted apart (ages would disagree);
:func:`merge_sketches` rejects all of those loudly.

Caveat (documented, tested): lazy cleaning means a group may be stale
in one operand and fresh in the other; forcing ``prepare_query_all`` at
the common time before combining resolves every mark, so the merge is
exact *when every group is touched at least once per cycle in each
substream* — Eq. 1's condition, comfortably true for the grouped
sketches (w = 64).  For the w = 1 sketches (HLL, MinHash) a substream
can skip a register across two mark flips and retain stale content the
union stream would have cleaned; the deviation is one-sided (stale
cells only inflate max-combines) and vanishes in the paper's
C >> M operating regime.
"""

from __future__ import annotations

import copy

from repro.core.registry import AlgoDescriptor, cell_merge_for, descriptor_of

__all__ = ["merge_sketches", "merge_many", "mergeable"]


def _frames(sketch, desc: AlgoDescriptor) -> tuple:
    return tuple(sketch.frames) if desc.two_stream else (sketch.frame,)


def _clocks(sketch, desc: AlgoDescriptor) -> tuple[int, ...]:
    if desc.two_stream:
        return tuple(int(c) for c in sketch.counts)
    return (int(sketch.t),)


def _set_clocks(sketch, desc: AlgoDescriptor, times: tuple[int, ...]) -> None:
    if desc.two_stream:
        sketch.counts = list(times)
    else:
        sketch.t = times[0]


def _combine_of(sketch, desc: AlgoDescriptor):
    """The cell-merge operator: descriptor-level, or from the instance's
    own spec for the generic lifting (whose F varies per instance)."""
    if desc.cell_merge is not None:
        return desc.cell_merge
    spec = getattr(sketch, "spec", None)
    if spec is None:
        raise ValueError(
            f"{type(sketch).__name__} has neither a descriptor-level merge "
            "operator nor a CSM spec to derive one from"
        )
    return cell_merge_for(spec.update)


def mergeable(a, b) -> bool:
    """True iff ``a`` and ``b`` are combinable (same type, geometry, seeds)."""
    if type(a) is not type(b):
        return False
    desc = descriptor_of(a)
    if desc is None:
        return False
    try:
        return desc.merge_signature(a) == desc.merge_signature(b)
    except AttributeError:
        return False


def merge_sketches(a, b, *, t: int | None = None):
    """Merge ``b`` into a *new* sketch equal to observing both streams.

    Args:
        a, b: two SHE sketches of identical type/configuration whose
            clocks refer to the same time axis.
        t: the common query time; defaults to the later clock.  Both
            operands' frames are brought to ``t`` before combining.

    Returns:
        A new sketch (a's type) positioned at time ``t``.
    """
    if not mergeable(a, b):
        raise ValueError(
            f"cannot merge {type(a).__name__} with {type(b).__name__}: "
            "types, geometry, frame kind and hash seeds must all match "
            "(and both types must be registered algorithms)"
        )
    desc = descriptor_of(a)
    combine = _combine_of(a, desc)
    times = tuple(
        t if t is not None else max(ca, cb)
        for ca, cb in zip(_clocks(a, desc), _clocks(b, desc))
    )
    out = copy.deepcopy(a)
    for fa, fb, fo, tt in zip(
        _frames(a, desc), _frames(b, desc), _frames(out, desc), times
    ):
        fa.prepare_query_all(tt)
        fb.prepare_query_all(tt)
        fo.prepare_query_all(tt)
        fo.cells[:] = combine(fa.cells, fb.cells)
        if hasattr(fo, "marks"):
            fo.marks[:] = fa.marks  # identical after prepare at tt
    _set_clocks(out, desc, times)
    return out


def _clock_of(sketch) -> tuple[int, ...]:
    desc = descriptor_of(sketch)
    if desc is None:
        raise ValueError(
            f"{type(sketch).__name__} is not a registered algorithm"
        )
    return _clocks(sketch, desc)


def merge_many(sketches, *, t: int | None = None, require_aligned: bool = False):
    """Fold :func:`merge_sketches` over a collection of shard sketches.

    This is the query fan-in of the sharded service: snapshot every
    shard, bring them all to the common time ``t``, and combine.  The
    result is a *new* sketch positioned at ``t`` (defaulting to the
    latest operand clock).

    Args:
        sketches: one or more mutually mergeable SHE sketches.
        t: common query time; defaults to the maximum operand clock.
        require_aligned: when True, reject operands whose count-based
            clocks disagree.  Shards of one engine observe the same
            time axis, so drifted clocks mean the fan-in would combine
            windows over *different* suffixes of the stream — loudly
            refusing beats a silently biased answer.

    Raises:
        ValueError: on an empty collection, non-mergeable operands, or
            (with ``require_aligned``) drifted clocks.
    """
    sketches = list(sketches)
    if not sketches:
        raise ValueError("merge_many needs at least one sketch")
    if require_aligned:
        clocks = {_clock_of(s) for s in sketches}
        if len(clocks) > 1:
            raise ValueError(
                "count-based clocks drifted across shards: "
                f"{sorted(clocks)}; operands must observe the same time axis"
            )
    first = sketches[0]
    if len(sketches) == 1:
        desc = descriptor_of(first)
        if desc is None:
            raise ValueError(
                f"{type(first).__name__} is not a registered algorithm"
            )
        out = copy.deepcopy(first)
        times = tuple(
            t if t is not None else c for c in _clocks(first, desc)
        )
        for frame, tt in zip(_frames(out, desc), times):
            frame.prepare_query_all(tt)
        _set_clocks(out, desc, times)
        return out
    out = merge_sketches(first, sketches[1], t=t)
    for s in sketches[2:]:
        out = merge_sketches(out, s, t=t)
    return out
