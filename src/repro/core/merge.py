"""Merging SHE sketches — distributed sliding-window monitoring.

The fixed-window originals are all mergeable (OR bits, max registers,
sum counters, min hashes), which is how distributed deployments
aggregate per-link monitors into one view.  SHE preserves mergeability
*provided the clocks align*: two sketches observing substreams of the
same time axis (e.g. two switch ports timestamped by a shared counter)
have identical group offsets, cycle lengths and virtual ages, so after
forcing both frames to their common query time the cell-wise combine of
the originals is exactly the SHE sketch of the union stream.

What cannot merge: sketches with different windows, alphas, sizes or
hash seeds (the combine would be meaningless), or count-based clocks
that drifted apart (ages would disagree); :func:`merge_sketches`
rejects all of those loudly.

Caveat (documented, tested): lazy cleaning means a group may be stale
in one operand and fresh in the other; forcing ``prepare_query_all`` at
the common time before combining resolves every mark, so the merge is
exact *when every group is touched at least once per cycle in each
substream* — Eq. 1's condition, comfortably true for the grouped
sketches (w = 64).  For the w = 1 sketches (HLL, MinHash) a substream
can skip a register across two mark flips and retain stale content the
union stream would have cleaned; the deviation is one-sided (stale
cells only inflate max-combines) and vanishes in the paper's
C >> M operating regime.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.core.she_bf import SheBloomFilter
from repro.core.she_bm import SheBitmap
from repro.core.she_cm import SheCountMin
from repro.core.she_hll import SheHyperLogLog
from repro.core.she_mh import SheMinHash

__all__ = ["merge_sketches", "merge_many", "mergeable"]

_COMBINE = {
    SheBloomFilter: np.maximum,   # OR on 0/1 bits
    SheBitmap: np.maximum,        # OR on 0/1 bits
    SheHyperLogLog: np.maximum,   # max rank
    SheCountMin: lambda a, b: a + b,  # counts add
    SheMinHash: np.minimum,       # min hash values
}


def _config_key(sketch) -> tuple:
    cfg = sketch.config
    if isinstance(sketch, SheMinHash):
        seeds = tuple(int(s) for s in sketch._col_seeds[:4])
        return (type(sketch), cfg.window, cfg.t_cycle, sketch.num_counters, seeds)
    cells = sketch.frame.num_cells
    seeds = tuple(int(s) for s in sketch.hashes.seeds) if hasattr(sketch, "hashes") else (
        tuple(int(s) for s in sketch._select.seeds) + tuple(int(s) for s in sketch._value.seeds)
    )
    return (
        type(sketch),
        cfg.window,
        cfg.t_cycle,
        cfg.group_width,
        cells,
        type(sketch.frame).__name__ if not isinstance(sketch, SheMinHash) else None,
        seeds,
    )


def mergeable(a, b) -> bool:
    """True iff ``a`` and ``b`` are combinable (same type, geometry, seeds)."""
    if type(a) is not type(b) or type(a) not in _COMBINE:
        return False
    try:
        return _config_key(a) == _config_key(b)
    except AttributeError:
        return False


def merge_sketches(a, b, *, t: int | None = None):
    """Merge ``b`` into a *new* sketch equal to observing both streams.

    Args:
        a, b: two SHE sketches of identical type/configuration whose
            clocks refer to the same time axis.
        t: the common query time; defaults to the later clock.  Both
            operands' frames are brought to ``t`` before combining.

    Returns:
        A new sketch (a's type) positioned at time ``t``.
    """
    if not mergeable(a, b):
        raise ValueError(
            f"cannot merge {type(a).__name__} with {type(b).__name__}: "
            "types, geometry, frame kind and hash seeds must all match"
        )
    combine = _COMBINE[type(a)]

    if isinstance(a, SheMinHash):
        t0 = t if t is not None else max(a.counts[0], b.counts[0])
        t1 = t if t is not None else max(a.counts[1], b.counts[1])
        out = copy.deepcopy(a)
        for side, tt in ((0, t0), (1, t1)):
            a.frames[side].prepare_query_all(tt)
            b.frames[side].prepare_query_all(tt)
            out.frames[side].prepare_query_all(tt)
            out.frames[side].cells[:] = combine(
                a.frames[side].cells, b.frames[side].cells
            )
            if hasattr(out.frames[side], "marks"):
                out.frames[side].marks[:] = a.frames[side].marks
        out.counts = [t0, t1]
        return out

    tt = t if t is not None else max(a.t, b.t)
    out = copy.deepcopy(a)
    for s in (a, b, out):
        s.frame.prepare_query_all(tt)
    out.frame.cells[:] = combine(a.frame.cells, b.frame.cells)
    if hasattr(out.frame, "marks"):
        out.frame.marks[:] = a.frame.marks  # identical after prepare at tt
    out.t = tt
    return out


def _clock_of(sketch) -> tuple[int, ...]:
    return tuple(sketch.counts) if isinstance(sketch, SheMinHash) else (sketch.t,)


def merge_many(sketches, *, t: int | None = None, require_aligned: bool = False):
    """Fold :func:`merge_sketches` over a collection of shard sketches.

    This is the query fan-in of the sharded service: snapshot every
    shard, bring them all to the common time ``t``, and combine.  The
    result is a *new* sketch positioned at ``t`` (defaulting to the
    latest operand clock).

    Args:
        sketches: one or more mutually mergeable SHE sketches.
        t: common query time; defaults to the maximum operand clock.
        require_aligned: when True, reject operands whose count-based
            clocks disagree.  Shards of one engine observe the same
            time axis, so drifted clocks mean the fan-in would combine
            windows over *different* suffixes of the stream — loudly
            refusing beats a silently biased answer.

    Raises:
        ValueError: on an empty collection, non-mergeable operands, or
            (with ``require_aligned``) drifted clocks.
    """
    sketches = list(sketches)
    if not sketches:
        raise ValueError("merge_many needs at least one sketch")
    if require_aligned:
        clocks = {_clock_of(s) for s in sketches}
        if len(clocks) > 1:
            raise ValueError(
                "count-based clocks drifted across shards: "
                f"{sorted(clocks)}; operands must observe the same time axis"
            )
    first = sketches[0]
    if len(sketches) == 1:
        out = copy.deepcopy(first)
        if isinstance(first, SheMinHash):
            t0 = t if t is not None else first.counts[0]
            t1 = t if t is not None else first.counts[1]
            out.frames[0].prepare_query_all(t0)
            out.frames[1].prepare_query_all(t1)
            out.counts = [t0, t1]
        else:
            tt = t if t is not None else first.t
            out.frame.prepare_query_all(tt)
            out.t = tt
        return out
    out = merge_sketches(first, sketches[1], t=t)
    for s in sketches[2:]:
        out = merge_sketches(out, s, t=t)
    return out
