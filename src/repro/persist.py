"""Save / load SHE sketches as ``.npz`` archives.

A monitoring deployment needs to persist sketch state across restarts
and ship it between processes; this module round-trips every
*registered* SHE algorithm (the five paper sketches, the generic lift,
and anything installed via
:func:`repro.core.registry.register_algorithm`) through NumPy's
compressed archive format.  Everything needed to resume — cells, marks
or sweep position, the clock, and the constructor parameters — goes
into one file; hash-family state is reconstructed from the stored seed,
so archives are portable across machines.

What goes into the archive for each kind is the algorithm descriptor's
business (``to_state`` / ``from_state`` hooks); this module only owns
the envelope: the ``__meta__`` JSON header with its format version and
kind string, and the atomicity of the write.

Writes are atomic: the archive is staged as a temporary file in the
destination directory and renamed over the target with ``os.replace``,
so a crash mid-checkpoint leaves either the old complete archive or the
new complete archive — never a truncated one.
"""

from __future__ import annotations

import json
import os
import tempfile
import zipfile
from pathlib import Path

import numpy as np

from repro.core.registry import descriptor_of, get_descriptor, registered_kinds

__all__ = ["save_sketch", "load_sketch", "PersistFormatError"]

_FORMAT_VERSION = 1


class PersistFormatError(ValueError):
    """A sketch archive could not be understood.

    Raised on truncated or non-archive files, missing or corrupt
    ``__meta__`` headers, unsupported format versions, and unregistered
    sketch kinds.  Subclasses :class:`ValueError` so pre-existing
    ``except ValueError`` call sites keep working.

    Attributes:
        path: the archive that failed to load (when known).
        supported_kinds: the kind strings registered at failure time —
            what :func:`load_sketch` *could* have reconstructed.
    """

    def __init__(
        self,
        message: str,
        *,
        path: str | Path | None = None,
        supported_kinds: tuple[str, ...] | None = None,
    ):
        self.path = None if path is None else Path(path)
        self.supported_kinds = (
            tuple(registered_kinds()) if supported_kinds is None else tuple(supported_kinds)
        )
        if self.path is not None:
            message = f"{message} (archive: {self.path})"
        super().__init__(message)


def save_sketch(sketch, path: str | Path) -> None:
    """Serialise a registered SHE sketch to an ``.npz`` archive."""
    desc = descriptor_of(sketch)
    if desc is None:
        raise TypeError(
            f"cannot serialise {type(sketch).__name__}; supported: "
            f"{sorted(registered_kinds())} (register_algorithm adds more)"
        )
    meta_fields, arrays = desc.sketch_state(sketch)
    meta: dict = {
        "format": _FORMAT_VERSION,
        "kind": desc.class_name,
        **meta_fields,
    }
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    ).copy()
    _atomic_savez(Path(path), arrays)


def _atomic_savez(path: Path, arrays: dict) -> None:
    """Write an ``.npz`` atomically: temp file in the target dir + rename.

    The temp file lives next to the target so ``os.replace`` never
    crosses a filesystem boundary (rename is only atomic within one).
    """
    # match np.savez semantics: a suffix-less target gains ".npz"
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez_compressed(fh, **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
        # the rename is directory metadata: without a directory fsync a
        # power cut can durably keep the file contents yet forget the
        # file exists (best-effort where dirs can't be opened)
        try:
            dir_fd = os.open(path.parent, os.O_RDONLY)
        except OSError:
            dir_fd = None
        if dir_fd is not None:
            try:
                os.fsync(dir_fd)
            except OSError:
                pass
            finally:
                os.close(dir_fd)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def load_sketch(path: str | Path):
    """Reconstruct a SHE sketch saved by :func:`save_sketch`.

    Raises:
        PersistFormatError: the file is truncated, not an archive, has
            a corrupt or missing ``__meta__`` header, an unsupported
            format version, or a kind no registered algorithm claims.
        FileNotFoundError: the path does not exist.
    """
    path = Path(path)
    try:
        data = np.load(path)
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, OSError, ValueError, EOFError) as exc:
        raise PersistFormatError(
            f"not a readable sketch archive: {exc}", path=path
        ) from exc
    with data:
        try:
            raw = bytes(data["__meta__"])
        except KeyError as exc:
            raise PersistFormatError(
                "archive has no __meta__ header; not a sketch archive "
                "(or truncated mid-write by a non-atomic copy)",
                path=path,
            ) from exc
        try:
            meta = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise PersistFormatError(
                f"corrupt __meta__ header: {exc}", path=path
            ) from exc
        if meta.get("format") != _FORMAT_VERSION:
            raise PersistFormatError(
                f"unsupported archive format {meta.get('format')!r} "
                f"(expected {_FORMAT_VERSION})",
                path=path,
            )
        kind = meta.get("kind")
        try:
            desc = get_descriptor(kind)
        except KeyError as exc:
            raise PersistFormatError(
                f"unknown sketch kind {kind!r} in archive; registered: "
                f"{sorted(registered_kinds())} (register_algorithm adds more)",
                path=path,
            ) from exc
        return desc.sketch_from_state(meta, data)
