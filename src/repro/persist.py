"""Save / load SHE sketches as ``.npz`` archives.

A monitoring deployment needs to persist sketch state across restarts
and ship it between processes; this module round-trips the five SHE
sketches (and the generic lift) through NumPy's compressed archive
format.  Everything needed to resume — cells, marks or sweep position,
the clock, and the constructor parameters — goes into one file;
hash-family state is reconstructed from the stored seed, so archives
are portable across machines.

Writes are atomic: the archive is staged as a temporary file in the
destination directory and renamed over the target with ``os.replace``,
so a crash mid-checkpoint leaves either the old complete archive or the
new complete archive — never a truncated one.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

import numpy as np

from repro.core.config import SheConfig
from repro.core.hardware_frame import HardwareFrame
from repro.core.she_bf import SheBloomFilter
from repro.core.she_bm import SheBitmap
from repro.core.she_cm import SheCountMin
from repro.core.she_hll import SheHyperLogLog
from repro.core.she_mh import SheMinHash

__all__ = ["save_sketch", "load_sketch"]

_FORMAT_VERSION = 1

_KINDS = {
    "SheBloomFilter": SheBloomFilter,
    "SheBitmap": SheBitmap,
    "SheHyperLogLog": SheHyperLogLog,
    "SheCountMin": SheCountMin,
    "SheMinHash": SheMinHash,
}


def _frame_kind(frame) -> str:
    return "hardware" if isinstance(frame, HardwareFrame) else "software"


def _frame_state(frame, prefix: str, arrays: dict, meta: dict) -> None:
    arrays[f"{prefix}cells"] = frame.cells
    if isinstance(frame, HardwareFrame):
        arrays[f"{prefix}marks"] = frame.marks
    else:
        meta[f"{prefix}boundaries"] = frame._boundaries_done


def _restore_frame(frame, prefix: str, data, meta: dict) -> None:
    frame.cells[:] = data[f"{prefix}cells"]
    if isinstance(frame, HardwareFrame):
        frame.marks[:] = data[f"{prefix}marks"]
    else:
        frame._boundaries_done = int(meta[f"{prefix}boundaries"])


def _params_of(sketch) -> dict:
    cfg: SheConfig = sketch.config
    params = {
        "window": cfg.window,
        "alpha": cfg.alpha,
        "beta": cfg.beta,
    }
    if isinstance(sketch, SheBloomFilter):
        params.update(
            num_bits=sketch.num_bits,
            num_hashes=sketch.num_hashes,
            group_width=cfg.group_width,
            seed=sketch.hashes.seed,
        )
    elif isinstance(sketch, SheBitmap):
        params.update(
            num_bits=sketch.num_bits,
            group_width=cfg.group_width,
            seed=sketch.hashes.seed,
        )
    elif isinstance(sketch, SheHyperLogLog):
        params.update(num_registers=sketch.num_registers)
    elif isinstance(sketch, SheCountMin):
        params.update(
            num_counters=sketch.num_counters,
            num_hashes=sketch.num_hashes,
            group_width=cfg.group_width,
            seed=sketch.hashes.seed,
        )
    elif isinstance(sketch, SheMinHash):
        params.update(num_counters=sketch.num_counters)
    return params


def save_sketch(sketch, path: str | Path) -> None:
    """Serialise a SHE sketch to an ``.npz`` archive at ``path``."""
    kind = type(sketch).__name__
    if kind not in _KINDS:
        raise TypeError(f"cannot serialise {kind}; supported: {sorted(_KINDS)}")

    meta: dict = {
        "format": _FORMAT_VERSION,
        "kind": kind,
        "params": _params_of(sketch),
    }
    arrays: dict = {}
    if isinstance(sketch, SheMinHash):
        meta["frame"] = _frame_kind(sketch.frames[0])
        meta["counts"] = list(sketch.counts)
        meta["seed_hint"] = "col_seeds stored"
        arrays["col_seeds"] = sketch._col_seeds
        for side, frame in enumerate(sketch.frames):
            _frame_state(frame, f"f{side}_", arrays, meta)
    else:
        meta["frame"] = _frame_kind(sketch.frame)
        meta["t"] = sketch.t
        _frame_state(sketch.frame, "f_", arrays, meta)
        if isinstance(sketch, SheHyperLogLog):
            arrays["select_seeds"] = sketch._select.seeds.copy()
            arrays["value_seeds"] = sketch._value.seeds.copy()
            meta["params"]["seed"] = 0  # reconstructed from stored seeds

    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    ).copy()
    _atomic_savez(Path(path), arrays)


def _atomic_savez(path: Path, arrays: dict) -> None:
    """Write an ``.npz`` atomically: temp file in the target dir + rename.

    The temp file lives next to the target so ``os.replace`` never
    crosses a filesystem boundary (rename is only atomic within one).
    """
    # match np.savez semantics: a suffix-less target gains ".npz"
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez_compressed(fh, **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def load_sketch(path: str | Path):
    """Reconstruct a SHE sketch saved by :func:`save_sketch`."""
    with np.load(Path(path)) as data:
        meta = json.loads(bytes(data["__meta__"]).decode("utf-8"))
        if meta.get("format") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported archive format {meta.get('format')!r} "
                f"(expected {_FORMAT_VERSION})"
            )
        kind = meta["kind"]
        if kind not in _KINDS:
            raise ValueError(f"unknown sketch kind {kind!r} in archive")
        cls = _KINDS[kind]
        params = dict(meta["params"])
        params["frame"] = meta["frame"]

        if kind == "SheMinHash":
            window = params.pop("window")
            m = params.pop("num_counters")
            sketch = cls(window, m, alpha=params["alpha"], beta=params["beta"], frame=params["frame"])
            sketch._col_seeds = data["col_seeds"].copy()
            sketch.counts = [int(c) for c in meta["counts"]]
            for side, frame in enumerate(sketch.frames):
                _restore_frame(frame, f"f{side}_", data, meta)
            return sketch

        window = params.pop("window")
        if kind == "SheBloomFilter":
            params.pop("beta", None)  # BF has no legal band
            sketch = cls(window, params.pop("num_bits"), **params)
        elif kind == "SheBitmap":
            sketch = cls(window, params.pop("num_bits"), **params)
        elif kind == "SheHyperLogLog":
            sketch = cls(
                window,
                params.pop("num_registers"),
                alpha=params["alpha"],
                beta=params["beta"],
                frame=params["frame"],
            )
            sketch._select._seeds[:] = data["select_seeds"]
            sketch._value._seeds[:] = data["value_seeds"]
        elif kind == "SheCountMin":
            params.pop("beta", None)  # CM has no legal band
            sketch = cls(window, params.pop("num_counters"), **params)
        else:  # pragma: no cover - _KINDS is closed
            raise AssertionError(kind)
        sketch.t = int(meta["t"])
        _restore_frame(sketch.frame, "f_", data, meta)
        return sketch
