"""Bounded Zipf sampling — the workhorse behind the synthetic traces.

NumPy's ``Generator.zipf`` samples an *unbounded* Zipf, which cannot
match a trace with a known distinct-key universe.  Real packet traces
(CAIDA and friends) are well described by a Zipf-Mandelbrot law over a
finite universe; we sample ranks from that law via inverse-CDF lookup
(``searchsorted`` on a precomputed CDF), then map ranks through a
seeded permutation so key identity is uncorrelated with popularity.
"""

from __future__ import annotations

import numpy as np

from repro.common.validation import require_positive_int

__all__ = ["zipf_probabilities", "BoundedZipf"]


def zipf_probabilities(universe: int, skew: float, shift: float = 0.0) -> np.ndarray:
    """Zipf-Mandelbrot pmf over ranks ``1..universe``: p(r) ~ (r+q)^-s."""
    require_positive_int("universe", universe)
    if skew < 0:
        raise ValueError(f"skew must be >= 0, got {skew}")
    ranks = np.arange(1, universe + 1, dtype=np.float64)
    weights = (ranks + shift) ** (-skew)
    return weights / weights.sum()


class BoundedZipf:
    """Inverse-CDF sampler of keys with Zipf-Mandelbrot frequencies.

    Args:
        universe: number of distinct keys.
        skew: Zipf exponent s (0 = uniform).
        shift: Mandelbrot flattening parameter q.
        seed: RNG seed (drives both sampling and the key permutation).
        key_bits: keys are drawn from ``[0, 2^key_bits)`` via a random
            injection, mimicking e.g. IPv4 source addresses.
    """

    def __init__(
        self,
        universe: int,
        skew: float,
        *,
        shift: float = 0.0,
        seed: int = 0,
        key_bits: int = 32,
    ):
        self.universe = require_positive_int("universe", universe)
        self.skew = float(skew)
        self.rng = np.random.default_rng(seed)
        self._cdf = np.cumsum(zipf_probabilities(universe, skew, shift))
        self._cdf[-1] = 1.0
        # random injective rank -> key map (sampling without replacement
        # from the key space would be huge; use a keyed permutation of a
        # random base instead: collisions over 2^key_bits are negligible
        # for universes << 2^(key_bits/2)... to be safe, deduplicate)
        space = 1 << key_bits
        keys = self.rng.integers(0, space, size=universe, dtype=np.uint64)
        keys = np.unique(keys)
        while keys.size < universe:
            extra = self.rng.integers(
                0, space, size=universe - keys.size + 16, dtype=np.uint64
            )
            keys = np.unique(np.concatenate([keys, extra]))
        self.keys = self.rng.permutation(keys[:universe])

    def sample(self, n: int) -> np.ndarray:
        """Draw ``n`` stream items (uint64 keys) i.i.d. from the law."""
        require_positive_int("n", n)
        u = self.rng.random(n)
        ranks = np.searchsorted(self._cdf, u, side="right")
        return self.keys[np.minimum(ranks, self.universe - 1)]

    def rank_of(self, keys: np.ndarray) -> np.ndarray:
        """Popularity rank (0 = most popular) of each key, -1 if unknown."""
        order = np.argsort(self.keys, kind="stable")
        sorted_keys = self.keys[order]
        pos = np.searchsorted(sorted_keys, keys)
        pos = np.minimum(pos, self.universe - 1)
        found = sorted_keys[pos] == keys
        out = np.where(found, order[pos], -1)
        return out.astype(np.int64)
