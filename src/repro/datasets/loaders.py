"""Load real traces into sketch-ready key arrays.

The reproduction ships synthetic generators, but a user with an actual
trace (a CAIDA export, a web log, a packet CSV) needs a path into the
library.  Three formats cover the common cases:

* ``.npy`` — integer key arrays, used as-is;
* text (``.txt``/``.log``) — one key per line; integers load directly,
  anything else (IP strings, URLs) goes through FNV-1a
  (:func:`repro.common.hashing.canonical_key`);
* ``.csv`` — pick a column by index or header name, same key rules.

All loaders return ``uint64`` arrays in file order — arrival order is
the stream order, which is load-bearing for sliding windows.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.common.hashing import canonical_key

__all__ = ["load_npy", "load_text", "load_csv", "load_trace"]


def load_npy(path: str | Path) -> np.ndarray:
    """Load an integer key array saved with ``np.save``."""
    arr = np.load(Path(path))
    if arr.dtype.kind not in "iu":
        raise TypeError(f"{path}: expected integer keys, got dtype {arr.dtype}")
    return arr.astype(np.uint64, copy=False).reshape(-1)


def _to_key(token: str) -> int:
    token = token.strip()
    if not token:
        raise ValueError("empty key token")
    try:
        return int(token) & 0xFFFFFFFFFFFFFFFF
    except ValueError:
        return canonical_key(token)


def load_text(path: str | Path, *, skip_blank: bool = True) -> np.ndarray:
    """One key per line; non-integer lines hash via FNV-1a."""
    keys: list[int] = []
    with open(Path(path), "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                if skip_blank:
                    continue
                raise ValueError(f"{path}:{lineno}: blank line")
            keys.append(_to_key(line))
    return np.asarray(keys, dtype=np.uint64)


def load_csv(
    path: str | Path,
    column: int | str = 0,
    *,
    has_header: bool | None = None,
    delimiter: str = ",",
) -> np.ndarray:
    """Load one CSV column as keys.

    Args:
        column: index, or header name (implies a header row).
        has_header: force header presence; default: inferred (True when
            ``column`` is a name, else False).
        delimiter: field separator.
    """
    path = Path(path)
    by_name = isinstance(column, str)
    if has_header is None:
        has_header = by_name
    if by_name and not has_header:
        raise ValueError("selecting a column by name requires a header row")

    keys: list[int] = []
    with open(path, "r", encoding="utf-8", newline="") as fh:
        reader = csv.reader(fh, delimiter=delimiter)
        idx: int | None = None if by_name else int(column)
        for rowno, row in enumerate(reader):
            if not row:
                continue
            if rowno == 0 and has_header:
                if by_name:
                    try:
                        idx = row.index(column)
                    except ValueError as exc:
                        raise KeyError(
                            f"{path}: no column named {column!r}; "
                            f"headers: {row}"
                        ) from exc
                continue
            if idx is None or idx >= len(row):
                raise ValueError(
                    f"{path}: row {rowno + 1} has {len(row)} fields, "
                    f"need column {column!r}"
                )
            keys.append(_to_key(row[idx]))
    return np.asarray(keys, dtype=np.uint64)


def load_trace(path: str | Path, **kwargs) -> np.ndarray:
    """Dispatch on extension: .npy / .csv / anything-else-as-text."""
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".npy":
        return load_npy(path)
    if suffix == ".csv":
        return load_csv(path, **kwargs)
    return load_text(path, **kwargs)
