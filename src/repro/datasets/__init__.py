"""Synthetic dataset generators standing in for the paper's traces."""

from repro.datasets.traces import (
    DATASETS,
    Trace,
    caida_like,
    campus_like,
    distinct_stream,
    relevant_pair,
    webpage_like,
)
from repro.datasets.loaders import load_csv, load_npy, load_text, load_trace
from repro.datasets.zipf import BoundedZipf, zipf_probabilities

__all__ = [
    "DATASETS",
    "Trace",
    "caida_like",
    "campus_like",
    "distinct_stream",
    "relevant_pair",
    "webpage_like",
    "BoundedZipf",
    "zipf_probabilities",
    "load_csv",
    "load_npy",
    "load_text",
    "load_trace",
]
