"""Synthetic stand-ins for the paper's traces (§7.1).

The paper's algorithms consume only (key, arrival-order) pairs, and all
five accuracy metrics are functions of the key-frequency law and the
per-window cardinality.  Each generator below matches the corresponding
trace's reported statistics:

* **CAIDA**: ~30M packets with ~600K distinct srcIPs per trace — about
  50 packets per distinct key, a mild Zipf.  We default to a reduced
  scale (2M items / 40K distinct keeps the same items-per-distinct
  ratio and window-cardinality ratio at the default N = 2^16) with
  knobs to go full scale.
* **Campus** (gateway IP traces): campus gateways see heavier-tailed
  srcIP mixes — higher skew, smaller universe.
* **Webpage** (Frequent Itemset Mining repository): web-page item
  streams are flatter — low skew, larger universe relative to length.
* **Distinct Stream**: every item unique (frequency 1) — the paper's
  adversarial case for SHE-BF, where nothing in the filter ever
  re-arms a cleaned bit.
* **Relevant Stream** (IMC10-flavoured): two streams with a controlled
  key-pool overlap and optional temporal drift, for SHE-MH.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.validation import require_positive_int
from repro.datasets.zipf import BoundedZipf

__all__ = [
    "Trace",
    "caida_like",
    "campus_like",
    "webpage_like",
    "distinct_stream",
    "relevant_pair",
    "DATASETS",
]


@dataclass(frozen=True)
class Trace:
    """A generated stream plus the knobs that produced it."""

    name: str
    items: np.ndarray
    universe: int
    skew: float
    seed: int

    @property
    def num_items(self) -> int:
        return int(self.items.size)


def caida_like(
    n_items: int = 2_000_000,
    n_distinct: int = 40_000,
    *,
    skew: float = 1.05,
    seed: int = 100,
) -> Trace:
    """CAIDA-shaped trace: mild Zipf, ~50 items per distinct key."""
    require_positive_int("n_items", n_items)
    z = BoundedZipf(n_distinct, skew, shift=2.0, seed=seed)
    return Trace("CAIDA", z.sample(n_items), n_distinct, skew, seed)


def campus_like(
    n_items: int = 2_000_000,
    n_distinct: int = 20_000,
    *,
    skew: float = 1.3,
    seed: int = 101,
) -> Trace:
    """Campus-gateway-shaped trace: heavier skew, smaller universe."""
    require_positive_int("n_items", n_items)
    z = BoundedZipf(n_distinct, skew, shift=1.0, seed=seed)
    return Trace("Campus", z.sample(n_items), n_distinct, skew, seed)


def webpage_like(
    n_items: int = 2_000_000,
    n_distinct: int = 120_000,
    *,
    skew: float = 0.8,
    seed: int = 102,
) -> Trace:
    """Webpage-itemset-shaped trace: flat distribution, wide universe."""
    require_positive_int("n_items", n_items)
    z = BoundedZipf(n_distinct, skew, shift=0.0, seed=seed)
    return Trace("Webpage", z.sample(n_items), n_distinct, skew, seed)


def distinct_stream(n_items: int, *, seed: int = 103) -> Trace:
    """Worst-case stream for SHE-BF: every item appears exactly once."""
    require_positive_int("n_items", n_items)
    rng = np.random.default_rng(seed)
    base = rng.integers(0, 1 << 32, dtype=np.uint64)
    # unique keys: a strided walk through uint64 space (injective)
    items = base + np.arange(n_items, dtype=np.uint64) * np.uint64(0x9E3779B97F4A7C15)
    return Trace("Distinct", items, n_items, 0.0, seed)


def relevant_pair(
    n_items: int = 500_000,
    n_distinct: int = 100_000,
    *,
    overlap: float = 0.5,
    skew: float = 0.6,
    drift_period: int = 0,
    seed: int = 104,
) -> tuple[Trace, Trace]:
    """Two IMC10-flavoured streams with a controlled key-pool overlap.

    Each stream draws from ``n_distinct`` keys; a fraction ``overlap``
    of each pool is shared.  With ``drift_period > 0`` the shared
    fraction oscillates over time, giving the time-varying similarity
    Fig. 5e's stability experiment slides over.
    """
    require_positive_int("n_items", n_items)
    require_positive_int("n_distinct", n_distinct)
    if not 0.0 <= overlap <= 1.0:
        raise ValueError(f"overlap must be in [0, 1], got {overlap}")
    n_shared = int(overlap * n_distinct)
    n_own = n_distinct - n_shared
    rng = np.random.default_rng(seed)
    # carve three disjoint key ranges: shared, own-0, own-1
    all_keys = rng.permutation(
        rng.integers(0, 1 << 48, size=3 * n_distinct, dtype=np.uint64)
    )
    shared = all_keys[:n_shared]
    own = (all_keys[n_shared : n_shared + n_own], all_keys[2 * n_distinct : 2 * n_distinct + n_own])

    z = BoundedZipf(n_distinct, skew, seed=seed + 1)
    streams = []
    for side in range(2):
        pool = np.concatenate([shared, own[side]])
        # permute so popular ranks mix shared and own keys
        pool = np.random.default_rng(seed + 2).permutation(pool)
        ranks = z.rng.integers(0, n_distinct, size=n_items)  # uniform fallback
        # zipf-weighted ranks via the sampler's CDF
        u = np.random.default_rng(seed + 3 + side).random(n_items)
        ranks = np.searchsorted(np.cumsum(
            np.asarray(_rank_pmf(n_distinct, skew)), dtype=np.float64), u)
        ranks = np.minimum(ranks, n_distinct - 1)
        items = pool[ranks]
        if drift_period > 0 and side == 0:
            # oscillate: in odd half-periods side 0 swaps its shared-pool
            # draws for private aliases, collapsing the realised overlap
            shared_set = np.isin(items, shared)
            phase = (np.arange(n_items) // drift_period) % 2 == 1
            swap = shared_set & phase
            items = items.copy()
            items[swap] = items[swap] ^ np.uint64(1 << 55)
        streams.append(
            Trace(f"Relevant-{side}", items, n_distinct, skew, seed)
        )
    return streams[0], streams[1]


def _rank_pmf(universe: int, skew: float) -> np.ndarray:
    ranks = np.arange(1, universe + 1, dtype=np.float64)
    w = ranks ** (-skew)
    return w / w.sum()


#: name -> generator for the three throughput datasets of Fig. 10
DATASETS = {
    "CAIDA": caida_like,
    "Campus": campus_like,
    "Webpage": webpage_like,
}
