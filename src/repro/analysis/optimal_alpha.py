"""Eq. 2 — the optimal cleaning stretch for SHE-BF (§5.2).

For a mapped bit of age ``r*N`` the zero probability is ``P0(r) = Q^r``
with ``Q = (1 - 1/w)^(C*H/G) ~ exp(-C*H/M)``.  Averaging the "provides
zero-evidence" probability over ages uniform on ``[0, R)`` (young bits,
``r < 1``, never testify) gives

    FPR(R) = [1 - (Q^R - Q) / (ln(Q) * R)]^H.

Minimising is equivalent to minimising ``g(R) = (Q^R - Q)/R``, whose
stationary point solves ``Q^R * (R*ln(Q) - 1) + Q = 0`` — a single root
in ``R > 1`` because the derivative is monotone.  The optimal stretch
is ``alpha = R0 - 1``; at the paper's defaults (k = 8 hashes, their
memory-to-cardinality ratio) this lands near 3, the §7.1 setting.
"""

from __future__ import annotations

import math

from scipy.optimize import brentq

from repro.common.validation import require_in_range, require_positive_float, require_positive_int

__all__ = ["bf_q_parameter", "fpr_model", "optimal_r", "optimal_alpha"]


def bf_q_parameter(cardinality: float, num_hashes: int, num_bits: int) -> float:
    """``Q = (1 - 1/M)^(C*H)``: zero-probability decay per window of age."""
    require_positive_float("cardinality", cardinality)
    require_positive_int("num_hashes", num_hashes)
    m = require_positive_int("num_bits", num_bits)
    if m < 2:
        raise ValueError("num_bits must be >= 2 for a meaningful Q")
    return (1.0 - 1.0 / m) ** (cardinality * num_hashes)


def fpr_model(r: float, q: float, num_hashes: int) -> float:
    """Closed-form FPR(R) of §5.2 for cycle stretch ``R = 1 + alpha``."""
    require_positive_float("r", r)
    require_in_range("q", q, 0.0, 1.0, inclusive=False)
    h = require_positive_int("num_hashes", num_hashes)
    if r <= 1.0:
        # no aged band at all: every mapped bit is young, nothing testifies
        return 1.0
    evidence = (q**r - q) / (math.log(q) * r)
    return (1.0 - evidence) ** h


def optimal_r(q: float) -> float:
    """Root of ``Q^R * (R*ln(Q) - 1) + Q = 0`` — the FPR-minimising R."""
    require_in_range("q", q, 0.0, 1.0, inclusive=False)
    lnq = math.log(q)

    def f(r: float) -> float:
        return q**r * (r * lnq - 1.0) + q

    lo = 1.0
    # f(1) = Q*ln(Q) < 0; f -> Q > 0 as R -> inf
    hi = 2.0
    while f(hi) < 0:
        hi *= 2.0
        if hi > 1e9:
            raise RuntimeError(f"optimal R did not bracket for Q={q}")
    return float(brentq(f, lo, hi, xtol=1e-10))


def optimal_alpha(cardinality: float, num_hashes: int, num_bits: int) -> float:
    """Eq. 2: the optimal cleaning stretch ``alpha = R0 - 1``."""
    q = bf_q_parameter(cardinality, num_hashes, num_bits)
    return optimal_r(q) - 1.0
