"""Monte Carlo validation of the §5 analysis.

The closed forms of Eqs. 1-3 rest on modelling assumptions (uniform
hashing, uniform ages, worst-case F(x)); these simulators check each
against the *actual mechanism*, so the analysis module is tested
against reality and not only against itself:

* :func:`simulate_ondemand_failures` — throw ``(1+alpha)*C*H`` balls
  into ``G`` group-bins and count empty bins, the event Eq. 1 bounds;
* :func:`simulate_bf_fpr` — build a real SHE-BF over a distinct stream
  and measure the FPR that §5.2's ``FPR(R)`` formula predicts;
* :func:`simulate_bm_bias` — measure SHE-BM's signed cardinality error
  against Eq. 3's ``alpha*T/(4C)`` envelope.

Each returns (simulated, analytic) so callers — tests and the ablation
benches — can assert agreement bands.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.bounds import bm_relative_error_bound
from repro.analysis.ondemand import expected_failed_groups
from repro.analysis.optimal_alpha import bf_q_parameter, fpr_model
from repro.common.validation import require_positive_int

__all__ = [
    "simulate_ondemand_failures",
    "simulate_bf_fpr",
    "simulate_bm_bias",
]


def simulate_ondemand_failures(
    num_groups: int,
    alpha: float,
    cardinality: int,
    touches: int,
    *,
    trials: int = 200,
    seed: int = 0,
) -> tuple[float, float]:
    """Empirical vs analytic E[# groups missing a cleaning per cycle]."""
    require_positive_int("num_groups", num_groups)
    rng = np.random.default_rng(seed)
    updates = int((1.0 + alpha) * cardinality * touches)
    missed = 0
    for _ in range(trials):
        hit = np.zeros(num_groups, dtype=bool)
        hit[rng.integers(0, num_groups, size=updates)] = True
        missed += num_groups - int(np.count_nonzero(hit))
    simulated = missed / trials
    analytic = expected_failed_groups(num_groups, alpha, cardinality, touches)
    return simulated, analytic


def simulate_bf_fpr(
    window: int,
    num_bits: int,
    num_hashes: int,
    alpha: float,
    *,
    n_queries: int = 4000,
    seed: int = 0,
) -> tuple[float, float]:
    """Empirical SHE-BF FPR on a distinct stream vs §5.2's FPR(R)."""
    from repro.core import SheBloomFilter
    from repro.datasets import distinct_stream

    bf = SheBloomFilter(
        window, num_bits, num_hashes=num_hashes, alpha=alpha, seed=seed
    )
    stream = distinct_stream(
        window * (3 + int(np.ceil(alpha))), seed=seed
    ).items
    bf.insert_many(stream)
    probes = (np.uint64(1) << np.uint64(58)) + np.asarray(
        np.arange(n_queries), dtype=np.uint64
    )
    simulated = float(bf.contains_many(probes).mean())
    q = bf_q_parameter(window, num_hashes, bf.num_bits)
    analytic = fpr_model(1.0 + alpha, q, num_hashes)
    return simulated, analytic


def simulate_bm_bias(
    window: int,
    num_bits: int,
    alpha: float,
    *,
    trials: int = 6,
    seed: int = 0,
) -> tuple[float, float]:
    """Empirical |mean signed RE| of SHE-BM vs Eq. 3's bound.

    Uses a uniform all-distinct stream (C ~ N), the regime where the
    Eq. 3 envelope is tightest.
    """
    from repro.core import SheBitmap
    from repro.exact import ExactWindow

    rng = np.random.default_rng(seed)
    errs = []
    for trial in range(trials):
        bm = SheBitmap(
            window, num_bits, alpha=alpha, beta=1.0 - min(alpha, 0.5), seed=trial
        )
        ew = ExactWindow(window)
        stream = rng.integers(0, 1 << 44, size=4 * window, dtype=np.uint64)
        step = max(1, window // 2)
        for lo in range(0, stream.size, step):
            bm.insert_many(stream[lo : lo + step])
            ew.insert_many(stream[lo : lo + step])
            if lo >= 2 * window:
                true_c = ew.cardinality()
                errs.append((bm.cardinality() - true_c) / true_c)
    simulated = abs(float(np.mean(errs)))
    analytic = bm_relative_error_bound(alpha, window, window)  # C ~ N
    return simulated, analytic
