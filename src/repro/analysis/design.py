"""Parameter design: turn accuracy targets into SHE configurations.

The paper gives the pieces — Eq. 1 bounds the group count, Eq. 2 picks
alpha for SHE-BF, Eq. 3 relates alpha to SHE-BM's bias, the standard
sketch formulas size the arrays — but a user still has to assemble
them.  These designers do the assembly: given a window, an expected
window cardinality and a target error (or a memory cap), they return a
ready-to-construct parameter set, each choice annotated with the
equation that produced it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.analysis.bounds import bm_relative_error_bound
from repro.analysis.ondemand import max_groups_for_error, ondemand_design_value
from repro.analysis.optimal_alpha import bf_q_parameter, fpr_model, optimal_r
from repro.common.validation import require_in_range, require_positive_float, require_positive_int

__all__ = ["BfDesign", "BmDesign", "design_bloom_filter", "design_bitmap"]


@dataclass(frozen=True)
class BfDesign:
    """A SHE-BF configuration with its predicted operating point."""

    window: int
    num_bits: int
    num_hashes: int
    alpha: float
    group_width: int
    predicted_fpr: float
    rationale: tuple[str, ...] = field(default=())

    @property
    def memory_bytes(self) -> int:
        groups = max(1, self.num_bits // self.group_width)
        return (self.num_bits + groups + 7) // 8

    def build(self, *, frame: str = "hardware", seed: int = 1):
        """Construct the SheBloomFilter this design describes."""
        from repro.core import SheBloomFilter

        return SheBloomFilter(
            self.window,
            self.num_bits,
            num_hashes=self.num_hashes,
            alpha=self.alpha,
            group_width=self.group_width,
            frame=frame,
            seed=seed,
        )


@dataclass(frozen=True)
class BmDesign:
    """A SHE-BM configuration with its predicted operating point."""

    window: int
    num_bits: int
    alpha: float
    beta: float
    group_width: int
    predicted_bias_bound: float
    predicted_std: float
    rationale: tuple[str, ...] = field(default=())

    @property
    def memory_bytes(self) -> int:
        groups = max(1, self.num_bits // self.group_width)
        return (self.num_bits + groups + 7) // 8

    def build(self, *, frame: str = "hardware", seed: int = 2):
        """Construct the SheBitmap this design describes."""
        from repro.core import SheBitmap

        return SheBitmap(
            self.window,
            self.num_bits,
            alpha=self.alpha,
            beta=self.beta,
            group_width=self.group_width,
            frame=frame,
            seed=seed,
        )


def _round_up_groups(num_bits: int, group_width: int) -> int:
    return max(group_width, (num_bits + group_width - 1) // group_width * group_width)


def design_bloom_filter(
    window: int,
    cardinality: float,
    target_fpr: float,
    *,
    num_hashes: int = 8,
    group_width: int = 64,
    ondemand_eps: float = 0.01,
) -> BfDesign:
    """Size a SHE-BF for a target false-positive rate.

    Procedure:
      1. binary-search the bit count M so §5.2's ``FPR(R)`` at the
         Eq.-2-optimal R meets the target;
      2. set ``alpha = R0 - 1`` (Eq. 2) at that M;
      3. verify the group width against Eq. 1's cleaning-failure bound
         (widening groups if the chosen ones would miss cleanings).
    """
    require_positive_int("window", window)
    require_positive_float("cardinality", cardinality)
    require_in_range("target_fpr", target_fpr, 0.0, 1.0, inclusive=False)
    rationale = []

    def achieved(m: int) -> tuple[float, float]:
        q = bf_q_parameter(cardinality, num_hashes, m)
        r0 = optimal_r(q)
        return fpr_model(r0, q, num_hashes), r0 - 1.0

    lo_bits = max(2 * group_width, int(cardinality))
    hi_bits = lo_bits
    while achieved(hi_bits)[0] > target_fpr:
        hi_bits *= 2
        if hi_bits > 1 << 40:
            raise ValueError(
                f"target FPR {target_fpr} unreachable below 2^40 bits "
                f"(cardinality {cardinality}, k={num_hashes})"
            )
    while lo_bits + group_width < hi_bits:
        mid = (lo_bits + hi_bits) // 2
        if achieved(mid)[0] <= target_fpr:
            hi_bits = mid
        else:
            lo_bits = mid
    num_bits = _round_up_groups(hi_bits, group_width)
    fpr, alpha = achieved(num_bits)
    rationale.append(
        f"M={num_bits} bits: smallest array whose Eq.-2-optimal FPR(R) "
        f"= {fpr:.2e} meets the {target_fpr:.2e} target"
    )
    rationale.append(f"alpha={alpha:.2f} from Eq. 2 at Q={bf_q_parameter(cardinality, num_hashes, num_bits):.3f}")

    w = group_width
    groups = num_bits // w
    while (
        w < num_bits
        and ondemand_design_value(groups, alpha, cardinality, num_hashes) > ondemand_eps
    ):
        w *= 2
        groups = max(1, num_bits // w)
    if w != group_width:
        num_bits = _round_up_groups(num_bits, w)
        fpr, alpha = achieved(num_bits)
        rationale.append(
            f"group width widened to {w} so Eq. 1's cleaning-failure "
            f"value stays under {ondemand_eps} (M re-rounded to {num_bits})"
        )
    else:
        rationale.append(
            f"group width {w} ok: Eq. 1 value "
            f"{ondemand_design_value(groups, alpha, cardinality, num_hashes):.2e} "
            f"<= {ondemand_eps}"
        )

    return BfDesign(
        window=window,
        num_bits=num_bits,
        num_hashes=num_hashes,
        alpha=alpha,
        group_width=w,
        predicted_fpr=fpr,
        rationale=tuple(rationale),
    )


def design_bitmap(
    window: int,
    cardinality: float,
    target_re: float,
    *,
    group_width: int = 64,
    symmetric_band: bool = True,
) -> BmDesign:
    """Size a SHE-BM for a target relative error.

    Splits the target between Eq. 3's bias (choosing alpha) and the
    linear-counting variance (choosing M via §5.3's legal-cell count).
    ``symmetric_band`` applies the ablation-backed ``beta = 1 - alpha``
    (halves the bias floor; pass False for the paper's fixed 0.9).
    """
    require_positive_int("window", window)
    require_positive_float("cardinality", cardinality)
    require_positive_float("target_re", target_re)
    rationale = []

    # bias half-budget via Eq. 3: alpha = 4*C*eps_bias / T
    eps_bias = target_re / 2.0
    alpha = max(0.05, min(4.0 * cardinality * eps_bias / window, 1.0))
    rationale.append(
        f"alpha={alpha:.3f}: Eq. 3 bias alpha*T/(4C) = "
        f"{bm_relative_error_bound(alpha, window, cardinality):.3f} "
        f"<= half the target"
    )
    beta = max(0.5, 1.0 - alpha) if symmetric_band else 0.9
    rationale.append(
        f"beta={beta:.2f} ({'symmetric band (ablation)' if symmetric_band else 'paper default'})"
    )

    # variance half-budget: std of -M ln(u/m_l) ~ sqrt((e^rho - rho - 1)) /
    # (rho sqrt(m_l)) with rho = C/M; solve numerically for M
    eps_var = target_re / 2.0
    legal_fraction = 1.0 - beta / (1.0 + alpha)

    def predicted_std(m: int) -> float:
        rho = cardinality / m
        ml = max(1.0, legal_fraction * m)
        return math.sqrt(max(math.expm1(rho) - rho, 1e-12)) / (max(rho, 1e-9) * math.sqrt(ml))

    m = max(2 * group_width, int(cardinality / 4))
    while predicted_std(m) > eps_var and m < 1 << 40:
        m *= 2
    num_bits = _round_up_groups(m, group_width)
    rationale.append(
        f"M={num_bits} bits: predicted estimator std "
        f"{predicted_std(num_bits):.3f} <= half the target"
    )

    return BmDesign(
        window=window,
        num_bits=num_bits,
        alpha=alpha,
        beta=beta,
        group_width=group_width,
        predicted_bias_bound=bm_relative_error_bound(alpha, window, cardinality),
        predicted_std=predicted_std(num_bits),
        rationale=tuple(rationale),
    )
