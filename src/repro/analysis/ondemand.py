"""Eq. 1 — error of on-demand cleaning (§5.1).

A group is cleaned lazily, only when an item maps into it.  A group
that receives no insertion during a whole cleaning cycle keeps stale
cells (and, after two cycles, a wrapped mark).  With ``G`` groups,
window cardinality ``C``, ``H`` cells touched per insertion and
cleaning cycle ``(1+alpha)N``, the expected number of groups that fail
to refresh in a cycle is ``E = G * (1 - 1/G)^((1+alpha)*C*H)
~ G * exp(-(1+alpha)*C*H/G)``; Eq. 1 turns ``E <= eps`` into the
group-count design rule ``G*ln(G) / ((1+alpha)*C*H) <= eps``.
"""

from __future__ import annotations

import math

from repro.common.validation import (
    require_positive_float,
    require_positive_int,
)

__all__ = [
    "expected_failed_groups",
    "ondemand_design_value",
    "max_groups_for_error",
]


def expected_failed_groups(num_groups: int, alpha: float, cardinality: float, touches: int) -> float:
    """E[# groups missing their cleaning in one cycle] (exact form)."""
    g = require_positive_int("num_groups", num_groups)
    require_positive_float("alpha", alpha)
    require_positive_float("cardinality", cardinality)
    h = require_positive_int("touches", touches)
    updates = (1.0 + alpha) * cardinality * h
    if g == 1:
        return 0.0 if updates > 0 else 1.0
    return g * (1.0 - 1.0 / g) ** updates


def ondemand_design_value(num_groups: int, alpha: float, cardinality: float, touches: int) -> float:
    """Left-hand side of Eq. 1: ``G*ln(G) / ((1+alpha)*C*H)``."""
    g = require_positive_int("num_groups", num_groups)
    require_positive_float("alpha", alpha)
    require_positive_float("cardinality", cardinality)
    h = require_positive_int("touches", touches)
    return g * math.log(max(g, 2)) / ((1.0 + alpha) * cardinality * h)


def max_groups_for_error(eps: float, alpha: float, cardinality: float, touches: int) -> int:
    """Largest group count G satisfying Eq. 1 for tolerance ``eps``.

    Monotone in G, so a doubling search + bisection suffices.
    """
    require_positive_float("eps", eps)
    hi = 2
    while ondemand_design_value(hi, alpha, cardinality, touches) <= eps:
        hi *= 2
        if hi > 1 << 40:
            return hi
    lo = max(1, hi // 2)
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if ondemand_design_value(mid, alpha, cardinality, touches) <= eps:
            lo = mid
        else:
            hi = mid
    return lo
