"""Eqs. 3-5 — error bounds for the SHE estimators (§5.3).

All three bounds share the same mechanism: legal groups have ages
spread over ``[(1-ish)N, (1+alpha)N]``, so aged groups over-count by at
most the extra arrivals and near-perfect groups under-count
symmetrically; averaging leaves a residual proportional to ``alpha``.

* SHE-BM (Eq. 3):  |E[C_hat] - C| / C <= alpha*T / (4*C)
* SHE-HLL (Eq. 4): same leading term, ``* (1 + O(alpha*T/C))``
* SHE-MH (Eq. 5):  |E[S_hat] - S| <= e/4 + e^2/6,  e = 2*alpha*T/S_union

plus the §5.3 variance note for SHE-BM: the legal-bit count
``m_l = (2 - 2/(1+alpha)) * m`` shrinks as alpha shrinks, so alpha
trades bias (small alpha) against variance (large alpha).
"""

from __future__ import annotations

from repro.common.validation import require_in_range, require_positive_float

__all__ = [
    "bm_relative_error_bound",
    "hll_relative_error_bound",
    "mh_bias_bound",
    "bm_legal_cells",
    "bm_estimator_std",
]


def bm_relative_error_bound(alpha: float, window: float, cardinality: float) -> float:
    """Eq. 3: SHE-BM bias bound ``alpha*T / (4*C)``."""
    require_positive_float("alpha", alpha)
    require_positive_float("window", window)
    require_positive_float("cardinality", cardinality)
    return alpha * window / (4.0 * cardinality)


def hll_relative_error_bound(alpha: float, window: float, cardinality: float) -> float:
    """Eq. 4: SHE-HLL bias bound with its first-order correction."""
    base = bm_relative_error_bound(alpha, window, cardinality)
    return base * (1.0 + alpha * window / cardinality)


def mh_bias_bound(alpha: float, window: float, union_size: float) -> float:
    """Eq. 5: SHE-MH bias bound ``e/4 + e^2/6`` with ``e = 2*alpha*T/S_u``."""
    require_positive_float("alpha", alpha)
    require_positive_float("window", window)
    require_positive_float("union_size", union_size)
    eps = 2.0 * alpha * window / union_size
    return eps / 4.0 + eps * eps / 6.0


def bm_legal_cells(alpha: float, num_cells: int) -> float:
    """§5.3: expected legal-cell count ``m_l = (2 - 2/(1+alpha)) * m``."""
    require_positive_float("alpha", alpha)
    require_positive_float("num_cells", num_cells)
    return (2.0 - 2.0 / (1.0 + alpha)) * num_cells


def bm_estimator_std(alpha: float, num_cells: int, zero_fraction: float) -> float:
    """§5.3 variance note: std of the zero-fraction estimate, sqrt(p/m_l)."""
    p = require_in_range("zero_fraction", zero_fraction, 0.0, 1.0)
    ml = bm_legal_cells(alpha, num_cells)
    return (p / ml) ** 0.5
