"""§5 analysis: Eqs. 1-5, Monte Carlo validation, parameter designers."""

from repro.analysis.design import (
    BfDesign,
    BmDesign,
    design_bitmap,
    design_bloom_filter,
)
from repro.analysis.montecarlo import (
    simulate_bf_fpr,
    simulate_bm_bias,
    simulate_ondemand_failures,
)
from repro.analysis.bounds import (
    bm_estimator_std,
    bm_legal_cells,
    bm_relative_error_bound,
    hll_relative_error_bound,
    mh_bias_bound,
)
from repro.analysis.ondemand import (
    expected_failed_groups,
    max_groups_for_error,
    ondemand_design_value,
)
from repro.analysis.optimal_alpha import (
    bf_q_parameter,
    fpr_model,
    optimal_alpha,
    optimal_r,
)

__all__ = [
    "BfDesign",
    "BmDesign",
    "design_bitmap",
    "design_bloom_filter",
    "simulate_bf_fpr",
    "simulate_bm_bias",
    "simulate_ondemand_failures",
    "bm_estimator_std",
    "bm_legal_cells",
    "bm_relative_error_bound",
    "hll_relative_error_bound",
    "mh_bias_bound",
    "expected_failed_groups",
    "max_groups_for_error",
    "ondemand_design_value",
    "bf_q_parameter",
    "fpr_model",
    "optimal_alpha",
    "optimal_r",
]
