"""Stdlib HTTP exporter: /metrics, /healthz, /statusz on a daemon thread.

One :class:`MetricsExporter` serves a :class:`~repro.service.engine.
StreamEngine`'s observability surface over plain ``http.server`` — no
dependencies, so it can run inside any deployment of the repro:

* ``/metrics`` — the engine registry in Prometheus text exposition
  format.  When probe refreshing is on, SHE introspection gauges
  (:meth:`StreamEngine.update_probe_gauges`) are recomputed first.
* ``/healthz`` — 200 with ``{"status": "ok"}`` while every shard has a
  live, trusted worker *and* the write-ahead log (when enabled) is not
  erroring; 503 with the down-shard list / WAL error (and the
  supervisor's view, when one is attached) otherwise.  Load balancers
  and the CI smoke test key off the status code alone.
* ``/statusz`` — the full JSON story: stats snapshot plus one section
  per registered hook (overload, durability, supervisor, drift,
  windowed telemetry, SLO states — and anything added through
  :meth:`MetricsExporter.register_statusz_section`), then per-shard
  probes (when refreshing is on) and config.
* ``/alertz`` — the SLO engine's firing/pending burn-rate alerts
  (each GET triggers an evaluation); ``{"enabled": false}`` when no
  :class:`~repro.obs.slo.SloEngine` is attached.

Thread safety: the exporter thread only ever touches the registry
(lock-free snapshot reads), plain engine attributes, and — only when
``refresh_probes`` is true — the serial executor's in-process shards.
Probe refresh defaults *off* for process executors: their shards live
behind a single pipe per worker, and a scrape-thread RPC would
interleave with the engine thread's protocol.  For those deployments,
call ``engine.update_probe_gauges()`` from the engine's own thread
(e.g. after each checkpoint) and the exporter serves the latest values.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

__all__ = ["MetricsExporter"]


class MetricsExporter:
    """Serve one engine's metrics/health/status over HTTP.

    Args:
        engine: the :class:`StreamEngine` to expose (must have been
            built with ``obs=True`` for a non-empty ``/metrics``).
        host: bind address (default loopback).
        port: bind port; ``0`` picks an ephemeral port, read it back
            from :attr:`port` after :meth:`start`.
        refresh_probes: recompute SHE probe gauges on each scrape.
            ``None`` (default) auto-enables for serial executors only
            (see module docs for why).
    """

    def __init__(
        self,
        engine,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        refresh_probes: bool | None = None,
    ):
        self.engine = engine
        self._host = host
        self._port = port
        if refresh_probes is None:
            refresh_probes = getattr(engine, "executor_kind", "") == "serial"
        self.refresh_probes = refresh_probes
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        # /statusz sections are pluggable: name -> zero-arg callable
        # returning a JSON-safe value, or None to omit the section this
        # scrape.  The defaults probe optional engine surfaces lazily,
        # so subsystems attached after construction still show up.
        self._statusz_sections: dict = {}
        for name, fn in self._default_sections():
            self.register_statusz_section(name, fn)

    def register_statusz_section(self, name: str, fn) -> None:
        """Add (or replace) one named ``/statusz`` section.

        ``fn`` is called on each scrape with no arguments; return
        ``None`` to omit the section, any JSON-serialisable value to
        include it.  A raising hook degrades to ``{"error": ...}``
        rather than failing the scrape.
        """
        if not callable(fn):
            raise TypeError(f"statusz section {name!r} needs a callable")
        self._statusz_sections[str(name)] = fn

    def _default_sections(self):
        engine = self.engine

        def overload():
            fn = getattr(engine, "overload_snapshot", None)
            return fn() if fn is not None else None

        def durability():
            fn = getattr(engine, "wal_status", None)
            return fn() if fn is not None else None

        def supervisor():
            sup = getattr(engine, "_supervisor", None)
            return sup.snapshot() if sup is not None else None

        def drift():
            monitor = getattr(engine, "_drift_monitor", None)
            return monitor.statusz_section() if monitor is not None else None

        def telemetry():
            section = getattr(engine.obs, "telemetry_section", None)
            return section() if section is not None else None

        def slo():
            slo_engine = getattr(engine, "_slo_engine", None)
            return slo_engine.statusz_section() if slo_engine is not None else None

        return (
            ("overload", overload),
            ("durability", durability),
            ("supervisor", supervisor),
            ("drift", drift),
            ("telemetry", telemetry),
            ("slo", slo),
        )

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("exporter is not started")
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    def start(self) -> "MetricsExporter":
        if self._server is not None:
            return self
        self._server = ThreadingHTTPServer(
            (self._host, self._port), self._make_handler()
        )
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-obs-exporter",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._server = None
        self._thread = None

    def __enter__(self) -> "MetricsExporter":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    # -- endpoint bodies -----------------------------------------------------

    def _metrics_text(self) -> str:
        if self.refresh_probes:
            try:
                self.engine.update_probe_gauges()
            except Exception:  # a scrape must never take the engine down
                pass
        refresh = getattr(self.engine.obs, "refresh_telemetry", None)
        if refresh is not None:
            try:
                refresh()  # windowed rates/quantiles + stage gauges
            except Exception:
                pass
        return self.engine.obs.registry.render()

    def _health(self) -> tuple[int, dict]:
        down = list(getattr(self.engine, "down_shards", ()))
        closed = getattr(self.engine, "_closed", False)
        # a WAL whose last append/fsync failed means new data is not
        # durable: that is degraded service even with every shard up
        wal_status_fn = getattr(self.engine, "wal_status", None)
        wal = wal_status_fn() if wal_status_fn is not None else {"enabled": False}
        wal_error = wal.get("last_error")
        healthy = not down and not closed and wal_error is None
        body = {
            "status": "ok" if healthy else ("closed" if closed else "degraded"),
            "down_shards": down,
        }
        if wal.get("enabled"):
            body["wal"] = {
                "last_error": wal_error,
                "lag_items": wal.get("lag_items"),
                "fsync": wal.get("fsync"),
            }
        supervisor = getattr(self.engine, "_supervisor", None)
        if supervisor is not None:
            body["supervisor"] = supervisor.snapshot()
        return (200 if healthy else 503), body

    def _status(self) -> dict:
        # tick=False: a scrape is a pure read — the idle-engine flush
        # belongs to the engine thread's own stats/tick calls, never to
        # this thread (flushing mutates buffers; probing only reads)
        body = {
            "stats": self.engine.stats_snapshot(tick=False),
            "config": self.engine.config.to_json(),
            "executor": self.engine.executor_kind,
            "obs_enabled": self.engine.obs.enabled,
        }
        for name, fn in self._statusz_sections.items():
            try:
                section = fn()
            except Exception as exc:  # one bad hook must not eat the page
                section = {"error": str(exc)}
            if section is not None:
                body[name] = section
        if self.refresh_probes:
            try:
                body["probes"] = self.engine.probe_shards()
            except Exception:
                pass
        return body

    def _alertz(self) -> dict:
        slo_engine = getattr(self.engine, "_slo_engine", None)
        if slo_engine is None:
            return {"enabled": False, "alerts": [], "firing": []}
        return slo_engine.alertz_payload()

    def _make_handler(self):
        exporter = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt, *args):  # keep scrapes off stderr
                pass

            def _reply(self, code: int, content_type: str, body: bytes) -> None:
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self) -> None:
                path = self.path.split("?", 1)[0]
                try:
                    if path == "/metrics":
                        self._reply(
                            200,
                            "text/plain; version=0.0.4; charset=utf-8",
                            exporter._metrics_text().encode(),
                        )
                    elif path == "/healthz":
                        code, body = exporter._health()
                        self._reply(
                            code, "application/json", json.dumps(body).encode()
                        )
                    elif path == "/statusz":
                        self._reply(
                            200,
                            "application/json",
                            json.dumps(exporter._status()).encode(),
                        )
                    elif path == "/alertz":
                        self._reply(
                            200,
                            "application/json",
                            json.dumps(exporter._alertz()).encode(),
                        )
                    else:
                        self._reply(404, "text/plain", b"not found\n")
                except BrokenPipeError:  # client went away mid-reply
                    pass
                except Exception as exc:  # never kill the serving thread
                    try:
                        self._reply(
                            500, "text/plain", f"error: {exc}\n".encode()
                        )
                    except Exception:
                        pass

        return Handler
