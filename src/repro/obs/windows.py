"""Sliding-window telemetry: SHE-framed quantiles, stage latency, views.

The repo's own observability layer should eat what it serves: counters
and fixed-bucket histograms answer "since process start", but operators
of a sliding-window system ask sliding-window questions — p99 flush
latency *over the last window*, shed rate *in the last five minutes*.
This module backs the telemetry layer with the framework itself:

* :class:`SheWindowedQuantile` — a log-bucket (DDSketch-style) quantile
  sketch lifted onto a SHE frame, so samples expire by the window clock
  and same-geometry sketches merge across shards.  Registered as
  algorithm kind ``"wq"`` through :mod:`repro.core.registry`, which
  makes it servable by a :class:`~repro.service.engine.StreamEngine`
  end-to-end (sharding, checkpoints, recovery) — the extension path the
  registry promises, exercised by the telemetry layer itself.
* :class:`StageLatencyRecorder` — windowed p50/p95/p99 for each engine
  hot-path stage (admit → wal_append → stamp → flush_rpc → apply →
  query_fanin), with exemplar trace-ids reservoir-sampled into the top
  latency buckets (one-per-bucket reservoirs in the spirit of
  Braverman, Ostrovsky & Zaniolo's succinct stream sampling).
* :class:`WindowedRegistryView` — derived last-1m/5m/1h rate and
  quantile gauges over every existing Counter/Histogram family,
  computed from scrape-time snapshots so the hot path pays nothing.

Thread safety: ``observe()`` appends under a small lock and batches the
sketch inserts; ``refresh()`` (called by the exporter's scrape thread)
drains under the same lock.  The view only reads metric children, which
are single-writer / torn-read-tolerant by design.
"""

from __future__ import annotations

import math
import random
import threading
import time

import numpy as np

from repro.core.base import FrameKind, sized_from_memory
from repro.core.batch import apply_batch
from repro.core.csm import CellType, CsmSpec, UpdateKind
from repro.core.generic import GenericSheSketch
from repro.core.registry import (
    AlgoDescriptor,
    _default_from_state,
    _default_to_state,
    _single_frame_signature,
    register_algorithm,
)

__all__ = [
    "QUANTILE_SPEC",
    "SheWindowedQuantile",
    "ExemplarReservoir",
    "StageLatencyRecorder",
    "NULL_STAGES",
    "WindowedRegistryView",
    "ENGINE_STAGES",
]


# -- the windowed quantile sketch ---------------------------------------------

#: ⟨C, K, F⟩ for the quantile sketch: one ADD_ONE counter per log
#: bucket.  ``locations=1`` keeps the registry's derived cell-merge
#: (counts add) and hash bookkeeping, but inserts index buckets
#: directly — the "hash" of a measurement is its magnitude.
QUANTILE_SPEC = CsmSpec(
    name="windowed-quantile",
    cell_type=CellType.COUNTER,
    locations=1,
    update=UpdateKind.ADD_ONE,
    default_cell_bits=32,
    empty_value=0,
    one_sided=False,
)


class SheWindowedQuantile(GenericSheSketch):
    """Sliding-window quantiles over non-negative integer measurements.

    DDSketch-style value mapping: measurement ``v`` lands in log bucket
    ``round(ln(v) / ln(base))`` with ``base = (1+gamma)/(1-gamma)``, so
    every quantile estimate carries relative error ≤ ``gamma``.  The
    buckets are SHE cells — each insert stamps its bucket with the
    arrival time, the frame's lazy cleaning expires stale counts, and
    two same-geometry sketches merge by adding cells — so a quantile at
    time ``t`` reflects (approximately, per the SHE legality band) the
    last ``window`` samples of the union stream.

    Measurements are ``uint64`` keys on the engine wire format; the
    telemetry layer uses integer microseconds.  ``quantile`` returns
    the bucket's representative value in the same unit (as a float).

    Values 0 and 1 share bucket 0; values beyond ``base**(M-1)``
    saturate into the top bucket (the estimate floors at that bucket's
    representative).
    """

    cell_bits = 32
    from_memory = classmethod(sized_from_memory)

    def __init__(
        self,
        window: int,
        num_cells: int,
        *,
        gamma: float = 0.05,
        alpha: float = 0.2,
        group_width: int = 64,
        beta: float = 0.9,
        frame: FrameKind = "hardware",
        seed: int = 7,
    ):
        if not 0.0 < gamma < 1.0:
            raise ValueError(f"gamma must be in (0, 1), got {gamma}")
        super().__init__(
            QUANTILE_SPEC,
            window,
            num_cells,
            alpha=alpha,
            group_width=group_width,
            beta=beta,
            frame=frame,
            seed=seed,
        )
        self.gamma = float(gamma)
        self._log_base = math.log((1.0 + self.gamma) / (1.0 - self.gamma))

    # -- value <-> bucket mapping -------------------------------------------

    def bucket_of(self, values) -> np.ndarray:
        """Log-bucket index for each non-negative measurement."""
        v = np.asarray(values, dtype=np.float64)
        out = np.zeros(v.shape, dtype=np.int64)
        big = v > 1.0
        if np.any(big):
            idx = np.rint(np.log(v[big]) / self._log_base).astype(np.int64)
            out[big] = np.clip(idx, 0, self.num_cells_total - 1)
        return out

    def representative(self, bucket: int) -> float:
        """The value a bucket stands for (γ-relative-accurate)."""
        if bucket <= 0:
            return 1.0
        return math.exp(bucket * self._log_base)

    # -- SHE plumbing --------------------------------------------------------

    def _touch_columns(self, keys: np.ndarray, times: np.ndarray):
        # measurements index their bucket directly: no hashing, one
        # touched cell per sample, counts add under ADD_ONE
        idx = self.bucket_of(keys)
        return times, idx, None, self.spec.update

    def _insert_at(self, keys: np.ndarray, times: np.ndarray) -> None:
        apply_batch(self.frame, *self._touch_columns(keys, times))

    # -- queries -------------------------------------------------------------

    def _window_counts(self, t: int | None) -> np.ndarray:
        t = self._resolve_time(t)
        self.frame.prepare_query_all(t)
        return self.frame.cells.astype(np.float64)

    def sample_count(self, t: int | None = None) -> int:
        """Samples currently held in the window (post-cleaning)."""
        return int(self._window_counts(t).sum())

    def quantile(self, q: float, t: int | None = None) -> float:
        """The ``q``-quantile of the windowed samples (NaN when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        counts = self._window_counts(t)
        total = counts.sum()
        if total <= 0:
            return float("nan")
        target = max(q, 1e-12) * total
        cum = np.cumsum(counts)
        bucket = int(np.searchsorted(cum, target, side="left"))
        return self.representative(min(bucket, counts.size - 1))

    def quantiles(self, qs, t: int | None = None) -> list[float]:
        """Several quantiles from one frame cleaning pass."""
        counts = self._window_counts(t)
        total = counts.sum()
        if total <= 0:
            return [float("nan")] * len(list(qs))
        cum = np.cumsum(counts)
        out = []
        for q in qs:
            if not 0.0 <= q <= 1.0:
                raise ValueError(f"q must be in [0, 1], got {q}")
            target = max(q, 1e-12) * total
            bucket = int(np.searchsorted(cum, target, side="left"))
            out.append(self.representative(min(bucket, counts.size - 1)))
        return out

    def _probe_extra(self) -> dict:
        return {"gamma": self.gamma, "samples_in_window": self.sample_count()}


def _wq_to_state(desc, sketch) -> tuple[dict, dict]:
    meta, arrays = _default_to_state(desc, sketch)
    # the bucket mapping is part of the sketch's identity: a recover
    # with a different gamma would silently re-bucket history
    meta["params"]["gamma"] = sketch.gamma
    return meta, arrays


def _wq_signature(desc, sketch) -> tuple:
    return _single_frame_signature(desc, sketch) + (float(sketch.gamma),)


register_algorithm(AlgoDescriptor(
    kind="wq",
    cls=SheWindowedQuantile,
    size_arg="num_cells",
    spec=QUANTILE_SPEC,
    queries=frozenset({"quantile"}),
    degraded_caveat=(
        "quantiles ignore samples owned by missing shards; tail "
        "estimates may shift"
    ),
    shed_caveat=(
        "quantiles ignore arrivals shed inside the current window"
    ),
    signature=_wq_signature,
    to_state=_wq_to_state,
    from_state=_default_from_state,  # gamma rides in params
))


# -- exemplars ----------------------------------------------------------------


class ExemplarReservoir:
    """One-slot reservoir per latency bucket, linking buckets to traces.

    Each bucket keeps a single uniformly-chosen exemplar of the samples
    that ever landed there (classic reservoir sampling with k=1, kept
    per bucket so the *tail* buckets — the ones an operator drills into
    — always hold a live trace-id).  Read-side filtering drops
    exemplars older than ``max_age_s`` so a bucket that went quiet
    stops advertising a stale trace.
    """

    def __init__(self, bucket_of, *, max_age_s: float = 600.0, seed: int = 0xE7):
        self._bucket_of = bucket_of
        self._max_age_s = float(max_age_s)
        self._rng = random.Random(seed)
        # bucket -> [trace_id, value, wall_ts, samples_seen]
        self._slots: dict[int, list] = {}

    def offer(self, value: float, trace_id: str | None, now: float) -> None:
        if trace_id is None:
            return
        bucket = int(self._bucket_of(value))
        slot = self._slots.get(bucket)
        if slot is None:
            self._slots[bucket] = [trace_id, value, now, 1]
            return
        slot[3] += 1
        if self._rng.random() * slot[3] < 1.0:
            slot[0], slot[1], slot[2] = trace_id, value, now

    def read(self, *, min_bucket: int = 0, now: float, limit: int = 3) -> list[dict]:
        """Fresh exemplars at/above ``min_bucket``, highest bucket first."""
        out = []
        for bucket in sorted(self._slots, reverse=True):
            if bucket < min_bucket:
                break
            trace_id, value, ts, seen = self._slots[bucket]
            if now - ts > self._max_age_s:
                continue
            out.append({
                "bucket": bucket,
                "trace_id": trace_id,
                "value": value,
                "age_s": round(now - ts, 3),
                "samples_seen": seen,
            })
            if len(out) >= limit:
                break
        return out


# -- stage-level latency attribution ------------------------------------------

#: the engine hot path, in pipeline order (``shm_acquire`` /
#: ``shm_release`` only fire under the shared-memory transport)
ENGINE_STAGES = (
    "admit",
    "wal_append",
    "stamp",
    "shm_acquire",
    "flush_rpc",
    "shm_release",
    "apply",
    "query_fanin",
)


class StageLatencyRecorder:
    """Windowed latency quantiles per engine hot-path stage.

    One :class:`SheWindowedQuantile` per stage, clocked in *samples*
    (the SHE union-stream clock is count-based): the quantiles cover
    the last ``window`` observations of that stage.  ``observe`` is
    called from the engine thread (and the executor ack path); it
    buffers under a lock and batch-inserts every ``batch`` samples so
    the steady-state cost is one list append.  The exporter's scrape
    thread calls :meth:`refresh` to drain and publish gauges:

    * ``engine_stage_latency_seconds{stage, quantile}`` — windowed
      p50/p95/p99 over the last ``window`` samples
    * ``engine_stage_exemplar_seconds{stage, trace_id}`` — the freshest
      top-bucket exemplars (cleared and re-set on each refresh)
    * ``engine_stage_seconds{stage}`` — a cumulative histogram feeding
      :class:`WindowedRegistryView`'s wall-clock 1m/5m/1h quantiles

    :meth:`track_threshold` adds cumulative good/total accounting for a
    latency SLO (samples above the threshold are "bad" events).
    """

    enabled = True

    def __init__(
        self,
        registry,
        *,
        stages: tuple[str, ...] = ENGINE_STAGES,
        window: int = 4096,
        num_cells: int = 256,
        gamma: float = 0.05,
        batch: int = 128,
        quantiles: tuple[float, ...] = (0.5, 0.95, 0.99),
        exemplar_limit: int = 3,
        clock=time.time,
    ):
        self.stages = tuple(stages)
        self.window = int(window)
        self._quantiles = tuple(quantiles)
        self._batch = int(batch)
        self._exemplar_limit = int(exemplar_limit)
        self._clock = clock
        self._lock = threading.Lock()
        self._sketches = {
            s: SheWindowedQuantile(window, num_cells, gamma=gamma)
            for s in self.stages
        }
        self._reservoirs = {
            s: ExemplarReservoir(self._bucket_of_seconds(s))
            for s in self.stages
        }
        self._pending: dict[str, list] = {s: [] for s in self.stages}
        self._seen = {s: 0 for s in self.stages}
        # stage -> threshold_s -> cumulative samples above it
        self._over: dict[str, dict[float, int]] = {s: {} for s in self.stages}
        self._g_quantile = registry.gauge(
            "engine_stage_latency_seconds",
            f"Windowed stage latency quantiles (last {self.window} samples)",
            labels=("stage", "quantile"),
        )
        self._g_exemplar = registry.gauge(
            "engine_stage_exemplar_seconds",
            "Top-bucket latency exemplars linking stages to trace ids",
            labels=("stage", "trace_id"),
        )
        self._h_stage = registry.histogram(
            "engine_stage_seconds",
            "Stage duration on the engine hot path (cumulative)",
            labels=("stage",),
        )
        self._h_children = {s: self._h_stage.labels(s) for s in self.stages}

    def _bucket_of_seconds(self, stage: str):
        sketch = self._sketches[stage]

        def bucket(seconds: float) -> int:
            return int(sketch.bucket_of([_to_micros(seconds)])[0])

        return bucket

    # -- hot-path write side -------------------------------------------------

    def observe(self, stage: str, seconds: float, trace_id: str | None = None) -> None:
        """Record one stage duration (engine thread / executor ack).

        The steady-state cost is one lock plus one list append: the
        cumulative histogram, windowed sketch, threshold counts, clock
        read and exemplar offer are all deferred to the next drain
        (every ``batch`` samples, or any read-side call), where they
        run vectorised over the whole pending batch.
        """
        pending = self._pending.get(stage)
        if pending is None:
            raise ValueError(f"unknown stage {stage!r}; stages: {self.stages}")
        with self._lock:
            pending.append((seconds, trace_id))
            if len(pending) >= self._batch:
                self._drain_locked(stage)

    def _drain_locked(self, stage: str) -> None:
        pending = self._pending[stage]
        if not pending:
            return
        arr_s = np.asarray([s for s, _ in pending], dtype=np.float64)
        # traced samples are the tracer-sampled minority; exemplars
        # share one wall-clock read per drain (freshness within one
        # batch is indistinguishable to the read-side age filter)
        now = self._clock()
        reservoir = self._reservoirs[stage]
        for seconds, trace_id in pending:
            if trace_id is not None:
                reservoir.offer(seconds, trace_id, now)
        pending.clear()
        self._h_children[stage].observe_many(arr_s)
        micros = np.maximum(arr_s * 1e6, 1.0).astype(np.uint64)
        self._sketches[stage].insert_many(micros)
        self._seen[stage] += int(arr_s.size)
        over = self._over[stage]
        for threshold in over:
            over[threshold] += int(np.count_nonzero(arr_s > threshold))

    # -- SLO accounting ------------------------------------------------------

    def track_threshold(self, stage: str, threshold_s: float) -> None:
        """Start counting samples above ``threshold_s`` for a latency SLO."""
        if stage not in self._over:
            raise ValueError(f"unknown stage {stage!r}; stages: {self.stages}")
        with self._lock:
            self._over[stage].setdefault(float(threshold_s), 0)

    def threshold_totals(self, stage: str, threshold_s: float) -> tuple[int, int]:
        """Cumulative ``(samples_above, samples_total)`` for a tracked
        threshold — the bad/total event counts a burn rate divides."""
        with self._lock:
            self._drain_locked(stage)
            return self._over[stage][float(threshold_s)], self._seen[stage]

    # -- read side (scrape thread) -------------------------------------------

    def quantile(self, stage: str, q: float) -> float | None:
        """One windowed stage quantile in seconds (None when empty)."""
        with self._lock:
            self._drain_locked(stage)
            value = self._sketches[stage].quantile(q)
        return None if math.isnan(value) else value * 1e-6

    def refresh(self) -> None:
        """Drain pending samples and republish the windowed gauges."""
        now = self._clock()
        exemplars: dict[str, list[dict]] = {}
        with self._lock:
            for stage in self.stages:
                self._drain_locked(stage)
                sketch = self._sketches[stage]
                values = sketch.quantiles(self._quantiles)
                for q, value in zip(self._quantiles, values):
                    if not math.isnan(value):
                        self._g_quantile.labels(stage, _q_label(q)).set(value * 1e-6)
                p90 = sketch.quantile(0.9)
                min_bucket = (
                    0 if math.isnan(p90)
                    else int(sketch.bucket_of([max(p90, 1.0)])[0])
                )
                exemplars[stage] = self._reservoirs[stage].read(
                    min_bucket=min_bucket, now=now, limit=self._exemplar_limit
                )
        # exemplar children churn with trace ids: clear-and-set bounds
        # the family to (stages x exemplar_limit) live children
        self._g_exemplar.clear()
        for stage, entries in exemplars.items():
            for entry in entries:
                self._g_exemplar.labels(stage, entry["trace_id"]).set(entry["value"])

    def statusz_section(self) -> dict:
        """Per-stage windowed quantiles + fresh tail exemplars."""
        now = self._clock()
        out: dict = {"window_samples": self.window, "stages": {}}
        with self._lock:
            for stage in self.stages:
                self._drain_locked(stage)
                sketch = self._sketches[stage]
                values = sketch.quantiles(self._quantiles)
                p90 = sketch.quantile(0.9)
                min_bucket = (
                    0 if math.isnan(p90)
                    else int(sketch.bucket_of([max(p90, 1.0)])[0])
                )
                out["stages"][stage] = {
                    "samples_total": self._seen[stage],
                    "samples_in_window": sketch.sample_count(),
                    "quantiles_s": {
                        _q_label(q): (None if math.isnan(v) else v * 1e-6)
                        for q, v in zip(self._quantiles, values)
                    },
                    "exemplars": self._reservoirs[stage].read(
                        min_bucket=min_bucket, now=now,
                        limit=self._exemplar_limit,
                    ),
                }
        return out


def _to_micros(seconds: float) -> float:
    return max(seconds * 1e6, 1.0)


def _q_label(q: float) -> str:
    text = f"{q:g}"
    return text


class _NullStageRecorder:
    """Disabled recorder: observe/refresh are no-ops, totals read 0."""

    enabled = False
    stages = ()

    def observe(self, stage, seconds, trace_id=None) -> None:
        pass

    def track_threshold(self, stage, threshold_s) -> None:
        pass

    def threshold_totals(self, stage, threshold_s) -> tuple[int, int]:
        return 0, 0

    def quantile(self, stage, q):
        return None

    def refresh(self) -> None:
        pass

    def statusz_section(self) -> dict:
        return {}


NULL_STAGES = _NullStageRecorder()


# -- windowed views over the whole registry -----------------------------------

#: horizon name -> seconds, for the derived rate/quantile gauges
DEFAULT_HORIZONS = (("1m", 60.0), ("5m", 300.0), ("1h", 3600.0))


class WindowedRegistryView:
    """Last-1m/5m/1h rates and quantiles for every Counter/Histogram.

    Pure snapshot differencing: on each :meth:`refresh` (the exporter
    scrape thread) the view records every counter value / histogram
    bucket vector into a per-horizon ring of time slots, subtracts the
    oldest in-horizon slot from the newest, and publishes

    * ``<name minus _total>_rate{..., window}`` — per-second rate of
      each counter over the horizon
    * ``<name>_windowed_<unit>{..., window, quantile}`` — p50/p95/p99
      interpolated from each histogram's windowed bucket deltas

    The hot path never sees this: metric children are plain numbers and
    reading them races only with single writers (torn reads a scrape
    tolerates by design).  Derived gauges are skipped on later passes
    (the view only windows counters and histograms), so there is no
    feedback.  Until a horizon's ring spans its full width the delta
    covers the available history — rates and quantiles are ratios, so
    a shorter span changes resolution, not meaning.
    """

    def __init__(
        self,
        registry,
        *,
        horizons=DEFAULT_HORIZONS,
        slots: int = 15,
        quantiles: tuple[float, ...] = (0.5, 0.95, 0.99),
        clock=time.time,
    ):
        if slots < 2:
            raise ValueError("windowed view needs at least 2 ring slots")
        self._registry = registry
        self._horizons = tuple((str(n), float(s)) for n, s in horizons)
        self._slots = int(slots)
        self._quantiles = tuple(quantiles)
        self._clock = clock
        # (metric name, label key) -> horizon name -> ring of
        # [slot_epoch, wall_ts, snapshot] (snapshot = float for
        # counters, (counts tuple, sum, count) for histograms)
        self._rings: dict = {}
        self._out: dict[str, object] = {}  # derived gauge families
        self._last: dict = {}

    # -- naming --------------------------------------------------------------

    @staticmethod
    def rate_name(name: str) -> str:
        base = name[: -len("_total")] if name.endswith("_total") else name
        return base + "_rate"

    @staticmethod
    def windowed_name(name: str) -> str:
        for unit in ("_seconds", "_bytes"):
            if name.endswith(unit):
                return name[: -len(unit)] + "_windowed" + unit
        return name + "_windowed"

    # -- ring plumbing -------------------------------------------------------

    def _ring_update(self, series_key, horizon, now, snap):
        """Write the current slot and return (delta base, span_s)."""
        name, seconds = horizon
        rings = self._rings.setdefault(series_key, {})
        ring = rings.get(name)
        if ring is None:
            ring = rings[name] = [None] * self._slots
        slot_s = seconds / self._slots
        epoch = int(now // slot_s)
        i = epoch % self._slots
        cell = ring[i]
        if cell is None or cell[0] != epoch:
            ring[i] = [epoch, now, snap]  # first sample in this slot wins
        base = None
        for cell in ring:
            if cell is None or epoch - cell[0] >= self._slots:
                continue  # empty or aged out of the horizon
            if base is None or cell[0] < base[0]:
                base = cell
        if base is None or base[1] >= now:
            return None, 0.0
        return base, now - base[1]

    def _out_gauge(self, name: str, help: str, labelnames) -> object:
        gauge = self._out.get(name)
        if gauge is None:
            gauge = self._registry.gauge(name, help, labels=tuple(labelnames))
            self._out[name] = gauge
        return gauge

    # -- the scrape-side pass ------------------------------------------------

    def refresh(self) -> None:
        now = self._clock()
        summary: dict = {
            "horizons": {n: s for n, s in self._horizons},
            "refreshed_at": now,
            "rates": {},
            "quantiles": {},
        }
        for metric in list(self._registry.metrics()):
            if metric.name in self._out:
                continue  # never window our own derived gauges
            if metric.kind == "counter":
                self._refresh_counter(metric, now, summary)
            elif metric.kind == "histogram":
                self._refresh_histogram(metric, now, summary)
        self._last = summary

    def _refresh_counter(self, metric, now, summary) -> None:
        gauge = self._out_gauge(
            self.rate_name(metric.name),
            f"Windowed per-second rate of {metric.name}",
            metric.labelnames + ("window",),
        )
        for key, child in list(metric.children()):
            series_key = (metric.name, key)
            for horizon in self._horizons:
                base, span = self._ring_update(
                    series_key, horizon, now, float(child.value)
                )
                if base is None or span <= 0:
                    continue
                rate = max(child.value - base[2], 0.0) / span
                gauge.labels(*key, horizon[0]).set(rate)
                flat = _flat_series(metric.name, metric.labelnames, key)
                summary["rates"].setdefault(flat, {})[horizon[0]] = rate

    def _refresh_histogram(self, metric, now, summary) -> None:
        gauge = self._out_gauge(
            self.windowed_name(metric.name),
            f"Windowed quantiles of {metric.name}",
            metric.labelnames + ("window", "quantile"),
        )
        for key, child in list(metric.children()):
            series_key = (metric.name, key)
            snap = (tuple(child.counts), child.sum, child.count)
            for horizon in self._horizons:
                base, span = self._ring_update(series_key, horizon, now, snap)
                if base is None or span <= 0:
                    continue
                deltas = [
                    max(c - b, 0)
                    for c, b in zip(snap[0], base[2][0])
                ]
                flat = _flat_series(metric.name, metric.labelnames, key)
                for q in self._quantiles:
                    est = _bucket_quantile(child.bounds, deltas, q)
                    if est is None:
                        continue
                    gauge.labels(*key, horizon[0], _q_label(q)).set(est)
                    summary["quantiles"].setdefault(flat, {}).setdefault(
                        horizon[0], {}
                    )[_q_label(q)] = est

    def statusz_section(self) -> dict:
        return self._last


def _flat_series(name: str, labelnames, key) -> str:
    if not key:
        return name
    inner = ",".join(f'{n}="{v}"' for n, v in zip(labelnames, key))
    return f"{name}{{{inner}}}"


def _bucket_quantile(bounds, counts, q: float) -> float | None:
    """Linear interpolation inside fixed histogram buckets.

    ``counts`` are per-bucket (not cumulative) with the +Inf bucket
    last; the +Inf bucket answers with the top finite bound (no better
    information exists there).
    """
    total = sum(counts)
    if total <= 0:
        return None
    target = max(q, 1e-12) * total
    running = 0.0
    for i, c in enumerate(counts):
        if running + c >= target:
            if i >= len(bounds):
                return float(bounds[-1])
            lower = float(bounds[i - 1]) if i > 0 else 0.0
            upper = float(bounds[i])
            frac = (target - running) / c if c else 0.0
            return lower + frac * (upper - lower)
        running += c
    return float(bounds[-1])
