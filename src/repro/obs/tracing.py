"""Cross-process trace spans with a bounded in-memory ring.

A flush is a chain — engine drains buffers, ships batches over the
executor RPC boundary, a worker applies them to its sketch — and
knowing *where time goes* inside that chain needs spans, not counters.
A :class:`Span` is one timed operation carrying a ``trace_id`` shared
by the whole chain and a ``parent_id`` linking it to its caller; the
engine opens the root span, passes ``(trace_id, span_id)`` with the
RPC, and the worker process builds a child record around the sketch
apply (:func:`span_record` — workers have no tracer, just a dict and
two clock reads) which rides back on the acknowledgement and is
:meth:`Tracer.ingest`-ed into the parent's ring.

The ring is bounded (oldest spans fall off), so tracing is safe to
leave on in a long-running service; :meth:`Tracer.dump_trace` exports
one trace (or everything) as JSON for offline inspection.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "new_id",
    "span_record",
]


def new_id() -> str:
    """A fresh 64-bit hex id for traces and spans."""
    return os.urandom(8).hex()


@dataclass
class Span:
    """One finished (or in-flight) timed operation."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None = None
    pid: int = field(default_factory=os.getpid)
    start_s: float = 0.0
    duration_ms: float | None = None
    tags: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": self.pid,
            "start_s": self.start_s,
            "duration_ms": self.duration_ms,
            "tags": dict(self.tags),
        }


def span_record(
    name: str,
    trace_id: str,
    parent_id: str | None,
    start_s: float,
    duration_ms: float,
    **tags,
) -> dict:
    """Build a span dict without a tracer — the worker-process half.

    Workers ship these back on the RPC acknowledgement; the parent
    :meth:`Tracer.ingest`-s them so the whole chain lives in one ring.
    """
    return {
        "name": name,
        "trace_id": trace_id,
        "span_id": new_id(),
        "parent_id": parent_id,
        "pid": os.getpid(),
        "start_s": start_s,
        "duration_ms": duration_ms,
        "tags": tags,
    }


class _ActiveSpan:
    """Context manager that times one span and files it on exit."""

    __slots__ = ("_tracer", "span", "_t0")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span
        self._t0 = 0.0

    @property
    def trace_id(self) -> str:
        return self.span.trace_id

    @property
    def span_id(self) -> str:
        return self.span.span_id

    @property
    def context(self) -> tuple[str, str]:
        """``(trace_id, span_id)`` — what crosses the RPC boundary."""
        return (self.span.trace_id, self.span.span_id)

    def tag(self, **tags) -> None:
        self.span.tags.update(tags)

    def __enter__(self) -> "_ActiveSpan":
        self._t0 = self._tracer._clock()
        self.span.start_s = self._t0
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.span.duration_ms = (self._tracer._clock() - self._t0) * 1e3
        if exc_type is not None:
            self.span.tags.setdefault("error", exc_type.__name__)
        self._tracer._ring.append(self.span)
        return False


class Tracer:
    """Bounded span ring plus the factory for new spans.

    Single-writer like the registry: the owning thread opens and closes
    spans; worker records arrive via :meth:`ingest` on the same thread
    (the RPC ack path).  ``capacity`` bounds memory, not correctness —
    a dropped span is an old span.
    """

    enabled = True

    def __init__(
        self,
        capacity: int = 2048,
        *,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self._ring: deque[Span] = deque(maxlen=int(capacity))
        self._clock = clock

    def span(
        self,
        name: str,
        *,
        trace_id: str | None = None,
        parent_id: str | None = None,
        **tags,
    ) -> _ActiveSpan:
        """Open a span; a fresh trace starts when no ``trace_id`` is given."""
        return _ActiveSpan(
            self,
            Span(
                name=name,
                trace_id=trace_id or new_id(),
                span_id=new_id(),
                parent_id=parent_id,
                tags=tags,
            ),
        )

    def ingest(self, records: Iterable[dict]) -> None:
        """File span dicts produced elsewhere (worker processes)."""
        for rec in records:
            self._ring.append(
                Span(
                    name=rec["name"],
                    trace_id=rec["trace_id"],
                    span_id=rec["span_id"],
                    parent_id=rec.get("parent_id"),
                    pid=rec.get("pid", 0),
                    start_s=rec.get("start_s", 0.0),
                    duration_ms=rec.get("duration_ms"),
                    tags=dict(rec.get("tags") or {}),
                )
            )

    def spans(self, trace_id: str | None = None) -> list[Span]:
        """Ring contents, optionally filtered to one trace, oldest first."""
        if trace_id is None:
            return list(self._ring)
        return [s for s in self._ring if s.trace_id == trace_id]

    def dump_trace(self, trace_id: str | None = None) -> str:
        """JSON export of one trace (or the whole ring)."""
        return json.dumps([s.to_json() for s in self.spans(trace_id)], indent=2)

    def clear(self) -> None:
        self._ring.clear()

    def __len__(self) -> int:
        return len(self._ring)


class _NullActiveSpan:
    """Reusable no-op span handle: no ids, no ring, no allocation."""

    __slots__ = ()
    trace_id = None
    span_id = None
    context = None
    span = None

    def tag(self, **tags) -> None:
        pass

    def __enter__(self) -> "_NullActiveSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullActiveSpan()


class NullTracer:
    """Disabled tracer: every span is the shared no-op handle."""

    enabled = False

    def span(self, name, *, trace_id=None, parent_id=None, **tags):
        return _NULL_SPAN

    def ingest(self, records) -> None:
        pass

    def spans(self, trace_id=None) -> list:
        return []

    def dump_trace(self, trace_id=None) -> str:
        return "[]"

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


NULL_TRACER = NullTracer()
