"""Label-aware metrics registry: Counter / Gauge / Histogram.

The serving layer needs per-shard counters on its hot path, which rules
out anything heavier than an attribute increment: a metric child here is
one ``__slots__`` object holding a number, mutated without locks (the
engine is single-writer per metric; concurrent readers see a torn view
at worst, which a scrape tolerates).  Families add Prometheus-style
labels — ``counter.labels("3")`` resolves once, and callers on the hot
path cache the child, so steady-state cost is ``child.inc(n)``.

Disabling observability swaps in :data:`NULL_REGISTRY`, whose factories
all return one shared do-nothing child — the instrumentation call sites
stay in place and cost a no-op method call (<2% of ingest, verified by
``benchmarks/bench_service_throughput``).

:func:`render_prometheus` serialises the whole registry in the
Prometheus text exposition format (v0.0.4): HELP/TYPE headers, escaped
label values, and cumulative histogram buckets ending in ``+Inf``.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Iterable, Iterator, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
    "render_prometheus",
]

# latency-shaped default buckets (seconds), bounded at 14 + the +Inf bucket
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class _CounterChild:
    """One labelled counter value; monotone non-decreasing."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        self.value += n


class _GaugeChild:
    """One labelled gauge value; set/inc/dec freely."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = float(v)

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def dec(self, n: float = 1.0) -> None:
        self.value -= n


class _HistogramChild:
    """One labelled histogram: bounded buckets + sum + count."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, v: float) -> None:
        self.counts[bisect_left(self.bounds, v)] += 1
        self.sum += v
        self.count += 1

    def observe_many(self, values) -> None:
        """Bulk observe of a float array in one vector pass.

        ``searchsorted(side="left")`` places each value in the same
        bucket ``bisect_left`` would, so batched and one-at-a-time
        recording produce identical histograms.
        """
        import numpy as np

        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        idx = np.searchsorted(self.bounds, values, side="left")
        per_bucket = np.bincount(idx, minlength=len(self.counts))
        for i in np.flatnonzero(per_bucket):
            self.counts[i] += int(per_bucket[i])
        self.sum += float(values.sum())
        self.count += int(values.size)

    def cumulative(self) -> list[int]:
        """Per-bucket cumulative counts (monotone, ends at ``count``)."""
        out, running = [], 0
        for c in self.counts:
            running += c
            out.append(running)
        return out


class _Family:
    """Shared labels/children plumbing for the three metric kinds.

    With no label names the family *is* its sole child: ``inc`` /
    ``set`` / ``observe`` apply to the default ``()`` child directly.
    """

    kind = "untyped"
    _child_cls: type = _CounterChild

    def __init__(self, name: str, help: str = "", labelnames: Iterable[str] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children: dict[tuple[str, ...], object] = {}
        if not self.labelnames:
            self._default = self._make_child()
            self._children[()] = self._default

    def _make_child(self):
        return self._child_cls()

    def labels(self, *values) -> object:
        """Resolve (and cache) the child for one label-value tuple."""
        key = tuple(str(v) for v in values)
        if len(key) != len(self.labelnames):
            raise ValueError(
                f"{self.name} takes labels {self.labelnames}, got {key}"
            )
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._make_child()
        return child

    def children(self) -> Iterator[tuple[tuple[str, ...], object]]:
        yield from sorted(self._children.items())

    def clear(self) -> None:
        """Drop every labelled child (bounds churning label sets, e.g.
        exemplar trace-ids that are re-published on each refresh)."""
        self._children.clear()
        if not self.labelnames:
            self._default = self._make_child()
            self._children[()] = self._default

    # unlabelled convenience: delegate to the default child
    def _require_default(self):
        if self.labelnames:
            raise ValueError(
                f"{self.name} has labels {self.labelnames}; call .labels(...)"
            )
        return self._default


class Counter(_Family):
    kind = "counter"
    _child_cls = _CounterChild

    def inc(self, n: float = 1.0) -> None:
        self._require_default().inc(n)

    @property
    def value(self) -> float:
        return self._require_default().value


class Gauge(_Family):
    kind = "gauge"
    _child_cls = _GaugeChild

    def set(self, v: float) -> None:
        self._require_default().set(v)

    def inc(self, n: float = 1.0) -> None:
        self._require_default().inc(n)

    def dec(self, n: float = 1.0) -> None:
        self._require_default().dec(n)

    @property
    def value(self) -> float:
        return self._require_default().value


class Histogram(_Family):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one finite bucket bound")
        if any(math.isinf(b) for b in bounds):
            raise ValueError("+Inf bucket is implicit; pass finite bounds only")
        self._bounds = bounds
        super().__init__(name, help, labelnames)

    def _make_child(self):
        return _HistogramChild(self._bounds)

    def observe(self, v: float) -> None:
        self._require_default().observe(v)

    def observe_many(self, values) -> None:
        self._require_default().observe_many(values)

    @property
    def count(self) -> int:
        return self._require_default().count

    @property
    def sum(self) -> float:
        return self._require_default().sum


class Registry:
    """Named metric families, created idempotently.

    Asking twice for the same name returns the same family (so modules
    can declare their metrics independently), but re-registering a name
    as a different kind or label set is a bug and raises.
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[str, _Family] = {}

    def _get_or_create(self, cls, name, help, labels, **kwargs) -> _Family:
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls or existing.labelnames != tuple(labels):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind} "
                    f"with labels {existing.labelnames}"
                )
            return existing
        metric = cls(name, help, labels, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "", labels: Iterable[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Iterable[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    def metrics(self) -> list[_Family]:
        return list(self._metrics.values())

    def snapshot(self) -> dict:
        """Flat ``name{labels}`` -> value dict for /statusz and tests."""
        out: dict[str, float] = {}
        for metric in self._metrics.values():
            for key, child in metric.children():
                suffix = (
                    "{" + ",".join(
                        f'{n}="{_escape_label_value(v)}"'
                        for n, v in zip(metric.labelnames, key)
                    ) + "}"
                    if key else ""
                )
                if isinstance(child, _HistogramChild):
                    out[f"{metric.name}_count{suffix}"] = child.count
                    out[f"{metric.name}_sum{suffix}"] = child.sum
                else:
                    out[f"{metric.name}{suffix}"] = child.value
        return out

    def render(self) -> str:
        return render_prometheus(self)


class _NullChild:
    """Shared do-nothing child: every mutator is a no-op, reads are 0."""

    __slots__ = ()
    value = 0.0
    count = 0
    sum = 0.0

    def labels(self, *values) -> "_NullChild":
        return self

    def inc(self, n: float = 1.0) -> None:
        pass

    def dec(self, n: float = 1.0) -> None:
        pass

    def set(self, v: float) -> None:
        pass

    def observe(self, v: float) -> None:
        pass

    def observe_many(self, values) -> None:
        pass

    def clear(self) -> None:
        pass


_NULL_CHILD = _NullChild()


class NullRegistry:
    """Disabled registry: factories hand back one shared no-op child."""

    enabled = False

    def counter(self, name, help="", labels=()):
        return _NULL_CHILD

    def gauge(self, name, help="", labels=()):
        return _NULL_CHILD

    def histogram(self, name, help="", labels=(), buckets=DEFAULT_BUCKETS):
        return _NULL_CHILD

    def metrics(self) -> list:
        return []

    def snapshot(self) -> dict:
        return {}

    def render(self) -> str:
        return ""


NULL_REGISTRY = NullRegistry()


# -- Prometheus text exposition (v0.0.4) -------------------------------------


def _escape_help(s: str) -> str:
    return s.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(s: str) -> str:
    return s.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels_text(names: tuple[str, ...], values: tuple[str, ...], extra: str = "") -> str:
    parts = [
        f'{n}="{_escape_label_value(v)}"' for n, v in zip(names, values)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(v: float) -> str:
    if isinstance(v, float) and v.is_integer():
        return str(int(v))
    return repr(float(v))


def render_prometheus(registry: Registry | Mapping) -> str:
    """Serialise every metric family in the text exposition format."""
    lines: list[str] = []
    for metric in registry.metrics():
        if metric.help:
            lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        for key, child in metric.children():
            if isinstance(child, _HistogramChild):
                cum = child.cumulative()
                for bound, c in zip(child.bounds, cum):
                    le = _labels_text(
                        metric.labelnames, key, f'le="{_format_value(bound)}"'
                    )
                    lines.append(f"{metric.name}_bucket{le} {c}")
                inf = _labels_text(metric.labelnames, key, 'le="+Inf"')
                lines.append(f"{metric.name}_bucket{inf} {child.count}")
                plain = _labels_text(metric.labelnames, key)
                lines.append(f"{metric.name}_sum{plain} {_format_value(child.sum)}")
                lines.append(f"{metric.name}_count{plain} {child.count}")
            else:
                plain = _labels_text(metric.labelnames, key)
                lines.append(f"{metric.name}{plain} {_format_value(child.value)}")
    return "\n".join(lines) + ("\n" if lines else "")
