"""repro.obs — observability for the SHE serving stack.

Four pieces, composable but independently usable:

* :mod:`repro.obs.registry` — a label-aware metrics registry (Counter /
  Gauge / Histogram) with lock-free hot-path children and no-op
  variants for the disabled case.
* :mod:`repro.obs.tracing` — trace spans with ids that cross the
  executor RPC boundary, kept in a bounded ring, exported as JSON.
* :mod:`repro.obs.probes` — read-only introspection of SHE frame state
  (cell ages vs ``Tcycle``, young/perfect/aged counts, cleaning work).
* :mod:`repro.obs.exporter` — a stdlib-only HTTP exporter serving
  ``/metrics`` (Prometheus text), ``/healthz`` and ``/statusz``.

:class:`Observability` bundles one registry + one tracer and is what
the engine takes: ``StreamEngine(cfg, obs=True)`` builds an enabled
bundle, the default is the shared disabled bundle whose
instrumentation costs a no-op call per site.

Quickstart::

    from repro.obs import MetricsExporter
    from repro.service import EngineConfig, StreamEngine

    engine = StreamEngine(EngineConfig("cm", window=1 << 14, size=1 << 12),
                          obs=True)
    with MetricsExporter(engine) as exp:
        engine.ingest(keys)
        print(exp.url + "/metrics")       # Prometheus scrape target
    print(engine.obs.tracer.dump_trace()) # where did flush time go?
"""

from __future__ import annotations

from repro.obs.exporter import MetricsExporter
from repro.obs.probes import frame_probe
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    NullRegistry,
    Registry,
    render_prometheus,
)
from repro.obs.slo import (
    DEFAULT_RULES,
    BurnRateRule,
    SloEngine,
    SloObjective,
)
from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    new_id,
    span_record,
)

# importing the windowed-telemetry module registers the "wq" sliding
# quantile kind with repro.core.registry, so any process that builds an
# Observability bundle (every engine) can also serve/recover it
from repro.obs.windows import (
    ENGINE_STAGES,
    NULL_STAGES,
    ExemplarReservoir,
    SheWindowedQuantile,
    StageLatencyRecorder,
    WindowedRegistryView,
)

__all__ = [
    "Observability",
    "OBS_DISABLED",
    "SheWindowedQuantile",
    "StageLatencyRecorder",
    "ExemplarReservoir",
    "WindowedRegistryView",
    "ENGINE_STAGES",
    "NULL_STAGES",
    "SloEngine",
    "SloObjective",
    "BurnRateRule",
    "DEFAULT_RULES",
    "Registry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "render_prometheus",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "new_id",
    "span_record",
    "frame_probe",
    "MetricsExporter",
]


class Observability:
    """One registry + one tracer, enabled or a shared pair of no-ops.

    Args:
        enabled: build live metric/trace stores (True) or the no-op
            implementations (False).
        registry: override the registry (e.g. share one across engines;
            note metric names are global within a registry).
        tracer: override the tracer.
        span_capacity: ring size for a tracer built here.
        telemetry: build the sliding-window telemetry layer — a
            :class:`StageLatencyRecorder` at :attr:`stages` and a
            :class:`WindowedRegistryView` at :attr:`windows` (defaults
            to ``enabled``; pass ``False`` to measure an engine with
            plain counters only, as the overhead benchmark does).
    """

    def __init__(
        self,
        enabled: bool = True,
        *,
        registry=None,
        tracer=None,
        span_capacity: int = 2048,
        telemetry: bool | None = None,
    ):
        self.enabled = bool(enabled)
        if registry is not None:
            self.registry = registry
        else:
            self.registry = Registry() if enabled else NULL_REGISTRY
        if tracer is not None:
            self.tracer = tracer
        else:
            self.tracer = Tracer(span_capacity) if enabled else NULL_TRACER
        self.telemetry = self.enabled if telemetry is None else (
            bool(telemetry) and self.enabled
        )
        if self.telemetry:
            self.stages = StageLatencyRecorder(self.registry)
            self.windows = WindowedRegistryView(self.registry)
        else:
            self.stages = NULL_STAGES
            self.windows = None

    def refresh_telemetry(self) -> None:
        """Drain stage samples and republish every windowed gauge.

        The exporter calls this on each ``/metrics`` scrape; no-op for
        bundles built without the telemetry layer.
        """
        if self.windows is not None:
            self.stages.refresh()
            self.windows.refresh()

    def telemetry_section(self):
        """``/statusz`` body for the windowed-telemetry layer (or None)."""
        if self.windows is None:
            return None
        return {
            "stages": self.stages.statusz_section(),
            "windows": self.windows.statusz_section(),
        }

    @classmethod
    def coerce(cls, obs) -> "Observability":
        """Normalise the engine's ``obs`` argument.

        ``None``/``False`` -> the shared disabled bundle, ``True`` -> a
        fresh enabled bundle, an :class:`Observability` -> itself.
        """
        if obs is None or obs is False:
            return OBS_DISABLED
        if obs is True:
            return cls(enabled=True)
        if isinstance(obs, cls):
            return obs
        raise TypeError(
            f"obs must be a bool, None or Observability, got {type(obs).__name__}"
        )


OBS_DISABLED = Observability(enabled=False)
