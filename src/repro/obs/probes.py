"""Sketch introspection probes: the paper's quantities, live.

§4–§5 of the SHE paper reason about *cell age*: a cell younger than the
window N ("young") carries incomplete window information, one at
exactly N is "perfect", and older cells ("aged") over-cover the window
until the cleaning process — the sweeping pointer of §3.2 or the group
time-marks of §3.3 — resets them at most ``Tcycle`` after their last
cleaning.  These probes read exactly those quantities off a live frame
so an operator can see what the estimator sees: the age distribution
relative to ``Tcycle``, the young/perfect/aged split, the legal-band
coverage, the stored occupancy, and how much cleaning work the frame
has actually done (:attr:`cells_cleaned` counters maintained by the
frames).

Probes are **read-only**: they never run ``prepare_*`` (which would
lazily clean), so the occupancy they report is the stored state —
including cells the next touch would wipe.
"""

from __future__ import annotations

import numpy as np

__all__ = ["frame_probe", "AGE_HIST_BINS"]

# cumulative age-histogram bin edges, as fractions of Tcycle
AGE_HIST_BINS = (0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0)


def frame_probe(frame, t: int) -> dict:
    """Introspect one frame at time ``t`` without mutating it.

    Returns a flat dict: geometry, young/perfect/aged cell counts, the
    legal-band group fraction, stored occupancy, cumulative age
    histogram (fractions of ``Tcycle``), and the frame's cleaning-work
    counters.
    """
    ages = frame.all_cell_ages(t)
    window = frame.window
    t_cycle = frame.t_cycle
    m = frame.num_cells
    occupied = int(np.count_nonzero(frame.cells != frame.empty_value))
    legal = frame.legal_groups(t)
    hist = {
        f"{frac:g}": int(np.count_nonzero(ages <= frac * t_cycle))
        for frac in AGE_HIST_BINS
    }
    return {
        "num_cells": m,
        "num_groups": frame.num_groups,
        "group_width": frame.group_width,
        "window": window,
        "t_cycle": t_cycle,
        "young_cells": int(np.count_nonzero(ages < window)),
        "perfect_cells": int(np.count_nonzero(ages == window)),
        "aged_cells": int(np.count_nonzero(ages > window)),
        "legal_group_fraction": float(np.count_nonzero(legal)) / frame.num_groups,
        "fill_ratio": occupied / m,
        "occupied_cells": occupied,
        "age_mean_fraction": float(np.mean(ages)) / t_cycle,
        "age_hist_le": hist,
        "cells_cleaned": int(getattr(frame, "cells_cleaned", 0)),
        "groups_cleaned": int(getattr(frame, "groups_cleaned", 0)),
        "cleaning_checks": int(getattr(frame, "cleaning_checks", 0)),
    }
