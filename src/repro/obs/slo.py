"""SLO engine: multi-window, multi-burn-rate alert evaluation.

Google-SRE-style burn-rate alerting over the engine's own event
counters.  An :class:`SloObjective` names an error-ratio objective:

* ``kind="availability"`` — bad = rejected + shed arrivals, total =
  offered arrivals (ingested + rejected), straight off
  :class:`~repro.service.stats.EngineStats`.
* ``kind="latency"`` — bad = stage samples above ``threshold_s``,
  total = all samples of that stage, off
  :class:`~repro.obs.windows.StageLatencyRecorder` threshold counters.

Each :class:`BurnRateRule` pairs a fast and a slow window: the alert
condition is *both* windows burning error budget faster than
``factor`` × the sustainable rate, which keeps time-to-detect short
(fast window) without paging on blips (slow window must agree).  The
defaults are the classic pair — (5m, 1h) × 14.4 pages, (1h, 6h) × 6
tickets.  A condition must hold for two consecutive evaluations to go
``firing`` (one evaluation shows it ``pending``); a clean evaluation
clears it back to ``ok``.

:class:`SloEngine` attaches to a ``StreamEngine`` as
``engine._slo_engine`` — the exporter then serves firing/pending
alerts on ``/alertz`` and the transition timeline on ``/statusz``.
Evaluation only reads cumulative integer counters, so it is safe from
the exporter's scrape thread.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

__all__ = [
    "SloObjective",
    "BurnRateRule",
    "DEFAULT_RULES",
    "WINDOW_SECONDS",
    "SloEngine",
]

#: window name -> span in seconds (the SRE fast/slow alerting windows)
WINDOW_SECONDS = {
    "5m": 300.0,
    "1h": 3600.0,
    "6h": 21600.0,
}

OK, PENDING, FIRING = "ok", "pending", "firing"
_STATE_VALUE = {OK: 0, PENDING: 1, FIRING: 2}


@dataclass(frozen=True)
class SloObjective:
    """One error-ratio objective (e.g. 99.9% of arrivals admitted).

    Args:
        name: label value on the ``slo_*`` metrics and ``/alertz``.
        target: the objective as a success ratio in (0, 1), e.g.
            ``0.999`` — the error budget is ``1 - target``.
        kind: ``"availability"`` or ``"latency"``.
        threshold_s: latency objectives only — a sample counts against
            the budget when the stage took longer than this.
        stage: latency objectives only — which hot-path stage to hold
            to the threshold (default ``"flush_rpc"``).
    """

    name: str
    target: float
    kind: str = "availability"
    threshold_s: float | None = None
    stage: str = "flush_rpc"
    description: str = ""

    def __post_init__(self):
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {self.target}")
        if self.kind not in ("availability", "latency"):
            raise ValueError(
                f"kind must be 'availability' or 'latency', got {self.kind!r}"
            )
        if self.kind == "latency" and self.threshold_s is None:
            raise ValueError("latency objectives need threshold_s")


@dataclass(frozen=True)
class BurnRateRule:
    """Alert when both windows burn budget at ≥ ``factor`` × sustainable."""

    short: str
    long: str
    factor: float
    severity: str

    def __post_init__(self):
        for w in (self.short, self.long):
            if w not in WINDOW_SECONDS:
                raise ValueError(
                    f"unknown window {w!r}; known: {sorted(WINDOW_SECONDS)}"
                )
        if self.factor <= 0:
            raise ValueError(f"factor must be positive, got {self.factor}")


#: the classic SRE-workbook pair: page fast on a hard burn, ticket on a
#: slow sustained one
DEFAULT_RULES = (
    BurnRateRule(short="5m", long="1h", factor=14.4, severity="page"),
    BurnRateRule(short="1h", long="6h", factor=6.0, severity="ticket"),
)


class _WindowRing:
    """Per-horizon ring of (bad, total) cumulative snapshots.

    Each evaluation writes the current counters into the slot for the
    current time; the window's error ratio is the delta against the
    oldest in-horizon slot.  Before the ring spans its full horizon the
    delta covers available history — a ratio, so still meaningful.
    """

    def __init__(self, seconds: float, slots: int = 12):
        self._seconds = float(seconds)
        self._slots = int(slots)
        self._ring: list = [None] * self._slots  # [epoch, ts, bad, total]

    def update(self, now: float, bad: int, total: int) -> tuple[int, int]:
        """Record the snapshot; return the window's (Δbad, Δtotal)."""
        slot_s = self._seconds / self._slots
        epoch = int(now // slot_s)
        i = epoch % self._slots
        cell = self._ring[i]
        if cell is None or cell[0] != epoch:
            self._ring[i] = [epoch, now, bad, total]
        base = None
        for cell in self._ring:
            if cell is None or epoch - cell[0] >= self._slots:
                continue
            if base is None or cell[0] < base[0]:
                base = cell
        if base is None:
            return bad, total
        return max(bad - base[2], 0), max(total - base[3], 0)


class SloEngine:
    """Evaluate burn-rate rules against a live engine's counters.

    Args:
        engine: the :class:`~repro.service.engine.StreamEngine` whose
            stats (and stage recorder, for latency objectives) feed the
            objectives.  The engine gains an ``_slo_engine`` attribute
            so the exporter can find this instance for ``/alertz``.
        objectives: defaults to one availability objective at 99.9%.
        rules: burn-rate rule set (default :data:`DEFAULT_RULES`).
        clock: injectable wall clock (tests drive synthetic timelines).
        timeline_capacity: how many state transitions ``/statusz`` keeps.
    """

    def __init__(
        self,
        engine,
        *,
        objectives: tuple[SloObjective, ...] | list | None = None,
        rules: tuple[BurnRateRule, ...] = DEFAULT_RULES,
        clock=time.time,
        slots: int = 12,
        timeline_capacity: int = 128,
    ):
        self.engine = engine
        if objectives is None:
            objectives = (SloObjective(name="availability", target=0.999),)
        self.objectives = tuple(objectives)
        self.rules = tuple(rules)
        self._clock = clock
        self._lock = threading.Lock()
        self.evaluations = 0
        self._rings = {
            (obj.name, w): _WindowRing(WINDOW_SECONDS[w], slots=slots)
            for obj in self.objectives
            for w in self._windows_of(obj)
        }
        # (objective, severity) -> consecutive evaluations the condition held
        self._hits = {
            (obj.name, rule.severity): 0
            for obj in self.objectives
            for rule in self.rules
        }
        self._states = {key: OK for key in self._hits}
        self._burns: dict = {}
        self._timeline: deque = deque(maxlen=int(timeline_capacity))
        stages = getattr(engine.obs, "stages", None)
        for obj in self.objectives:
            if obj.kind == "latency":
                if stages is None or not stages.enabled:
                    raise ValueError(
                        f"latency objective {obj.name!r} needs an engine "
                        "with windowed telemetry enabled (obs=True)"
                    )
                stages.track_threshold(obj.stage, obj.threshold_s)
        reg = engine.obs.registry
        self._g_burn = reg.gauge(
            "slo_burn_rate",
            "Error-budget burn rate per objective and window "
            "(1.0 = exactly sustainable)",
            labels=("slo", "window"),
        )
        self._g_state = reg.gauge(
            "slo_alert_state",
            "Burn-rate alert state per objective and severity "
            "(0 ok, 1 pending, 2 firing)",
            labels=("slo", "severity"),
        )
        self._c_transitions = reg.counter(
            "slo_alert_transitions_total",
            "Alert state transitions per objective and new state",
            labels=("slo", "to"),
        )
        engine._slo_engine = self

    def _windows_of(self, obj: SloObjective) -> set[str]:
        return {w for rule in self.rules for w in (rule.short, rule.long)}

    # -- event sources -------------------------------------------------------

    def _totals(self, obj: SloObjective) -> tuple[int, int]:
        """Cumulative (bad events, total events) for one objective."""
        if obj.kind == "availability":
            stats = self.engine.stats
            bad = int(stats.items_rejected) + int(stats.items_shed)
            total = int(stats.items_ingested) + int(stats.items_rejected)
            return bad, total
        stages = self.engine.obs.stages
        return stages.threshold_totals(obj.stage, obj.threshold_s)

    # -- evaluation ----------------------------------------------------------

    def evaluate(self) -> dict:
        """One evaluation pass: update burns, step alert states.

        Returns the ``/alertz`` payload.  Call it on a schedule (or let
        ``/alertz`` requests drive it — each GET evaluates first).
        """
        with self._lock:
            now = self._clock()
            self.evaluations += 1
            burns: dict = {}
            for obj in self.objectives:
                bad, total = self._totals(obj)
                budget = 1.0 - obj.target
                for w in self._windows_of(obj):
                    d_bad, d_total = self._rings[obj.name, w].update(
                        now, bad, total
                    )
                    ratio = (d_bad / d_total) if d_total > 0 else 0.0
                    burns[obj.name, w] = ratio / budget
                    self._g_burn.labels(obj.name, w).set(burns[obj.name, w])
            for obj in self.objectives:
                for rule in self.rules:
                    key = (obj.name, rule.severity)
                    burning = (
                        burns[obj.name, rule.short] >= rule.factor
                        and burns[obj.name, rule.long] >= rule.factor
                    )
                    self._hits[key] = self._hits[key] + 1 if burning else 0
                    new = (
                        FIRING if self._hits[key] >= 2
                        else PENDING if self._hits[key] == 1
                        else OK
                    )
                    old = self._states[key]
                    if new != old:
                        self._states[key] = new
                        self._c_transitions.labels(obj.name, new).inc()
                        self._timeline.append({
                            "at": now,
                            "slo": obj.name,
                            "severity": rule.severity,
                            "from": old,
                            "to": new,
                            "burn_short": round(burns[obj.name, rule.short], 4),
                            "burn_long": round(burns[obj.name, rule.long], 4),
                        })
                    self._g_state.labels(obj.name, rule.severity).set(
                        _STATE_VALUE[new]
                    )
            self._burns = burns
            return self._payload_locked(now)

    def _payload_locked(self, now: float) -> dict:
        alerts = []
        for obj in self.objectives:
            for rule in self.rules:
                key = (obj.name, rule.severity)
                alerts.append({
                    "slo": obj.name,
                    "kind": obj.kind,
                    "target": obj.target,
                    "severity": rule.severity,
                    "state": self._states[key],
                    "factor": rule.factor,
                    "windows": {
                        rule.short: round(
                            self._burns.get((obj.name, rule.short), 0.0), 4
                        ),
                        rule.long: round(
                            self._burns.get((obj.name, rule.long), 0.0), 4
                        ),
                    },
                })
        return {
            "enabled": True,
            "evaluated_at": now,
            "evaluations": self.evaluations,
            "alerts": alerts,
            "firing": [a for a in alerts if a["state"] == FIRING],
        }

    def alertz_payload(self, *, evaluate: bool = True) -> dict:
        """The ``/alertz`` body; evaluates first unless told not to."""
        if evaluate:
            return self.evaluate()
        with self._lock:
            return self._payload_locked(self._clock())

    def statusz_section(self) -> dict:
        """Objectives + current states + recent transition timeline."""
        with self._lock:
            return {
                "evaluations": self.evaluations,
                "objectives": [
                    {
                        "name": obj.name,
                        "kind": obj.kind,
                        "target": obj.target,
                        "threshold_s": obj.threshold_s,
                        "stage": obj.stage if obj.kind == "latency" else None,
                    }
                    for obj in self.objectives
                ],
                "states": {
                    f"{slo}/{severity}": state
                    for (slo, severity), state in sorted(self._states.items())
                },
                "burn_rates": {
                    f"{slo}/{window}": round(burn, 4)
                    for (slo, window), burn in sorted(self._burns.items())
                },
                "timeline": list(self._timeline),
            }
