"""repro — reproduction of *SHE: A Generic Framework for Data Stream
Mining over Sliding Windows* (Wu, Fan, Shi et al., ICPP 2022).

The package re-implements, in Python:

* the SHE framework (software sweep + hardware group/time-mark
  versions) and its five instantiations (``repro.core``);
* the original fixed-window sketches and the paper's "ideal goal"
  replay wrappers (``repro.fixed``);
* every sliding-window competitor of §7 — SWAMP, SHLL, CVS, TSV, TOBF,
  TBF, ECM, straw-man MinHash (``repro.baselines``);
* exact oracles, dataset generators, metrics and the per-figure
  experiment harness (``repro.exact``, ``repro.datasets``,
  ``repro.metrics``, ``repro.harness``);
* an FPGA pipeline/constraint/resource substrate standing in for the
  paper's Virtex-7 implementation (``repro.hardware``).

Quickstart::

    import numpy as np
    from repro import SheBloomFilter

    bf = SheBloomFilter(window=65536, num_bits=1 << 20)
    bf.insert_many(np.arange(100_000, dtype=np.uint64))
    bf.contains(99_999)   # True: inside the window
    bf.contains(1)        # False w.h.p.: expired
"""

from repro.core import (
    GenericSheSketch,
    TimedStream,
    merge_many,
    merge_sketches,
    mergeable,
    SheBitmap,
    SheBloomFilter,
    SheConfig,
    SheCountMin,
    SheHyperLogLog,
    SheMinHash,
)
from repro.exact import ExactJaccard, ExactWindow
from repro.persist import load_sketch, save_sketch
from repro.service import EngineConfig, StreamEngine, recover_engine

__version__ = "1.0.0"

__all__ = [
    "GenericSheSketch",
    "SheBitmap",
    "SheBloomFilter",
    "SheConfig",
    "SheCountMin",
    "SheHyperLogLog",
    "SheMinHash",
    "TimedStream",
    "ExactWindow",
    "ExactJaccard",
    "load_sketch",
    "save_sketch",
    "merge_many",
    "merge_sketches",
    "mergeable",
    "EngineConfig",
    "StreamEngine",
    "recover_engine",
    "__version__",
]
