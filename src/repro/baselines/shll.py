"""Sliding HyperLogLog (Chabchoub & Hébrail, ICDMW '10).

Each HLL register keeps a *list of future possible maxima* (LPFM): the
(timestamp, rank) pairs that could still be the window maximum at some
future query time — i.e. pairs not dominated by a newer pair with an
equal-or-larger rank.  Queries take, per register, the max rank among
pairs still inside the window, then apply the standard HLL estimator.

The LPFM deletes out-dated information *perfectly* (no aged/young
error), but each entry costs a 64-bit timestamp plus a rank — the
memory blow-up §2.2 points out ("the queues may be undesirably long").
``memory_bytes`` reports the *live* structure size, which is what the
paper's Fig. 9b memory axis measures.
"""

from __future__ import annotations

import numpy as np

from repro.common.hashing import HashFamily, leading_zeros_32
from repro.common.validation import as_key_array, require_positive_int
from repro.core.she_hll import hll_alpha

__all__ = ["SlidingHyperLogLog"]

#: bits charged per LPFM entry: 64-bit timestamp + 5-bit rank (§7.1)
_ENTRY_BITS = 64 + 5


class SlidingHyperLogLog:
    """HyperLogLog with per-register monotone timestamp queues."""

    def __init__(self, window: int, num_registers: int, *, seed: int = 32):
        self.window = require_positive_int("window", window)
        self.num_registers = require_positive_int("num_registers", num_registers)
        fam = HashFamily(2, seed=seed)
        self._select = HashFamily(1, seed=int(fam.seeds[0]))
        self._value = HashFamily(1, seed=int(fam.seeds[1]))
        # LPFM per register: list of (timestamp, rank), timestamps
        # increasing and ranks strictly decreasing front-to-back... the
        # *newest* entry is appended at the end.
        self._lpfm: list[list[tuple[int, int]]] = [[] for _ in range(num_registers)]
        self.t = 0

    def insert(self, key: int) -> None:
        """Insert one item."""
        self.insert_many(np.asarray([key], dtype=np.uint64))

    def insert_many(self, keys) -> None:
        """Insert a batch in arrival order."""
        keys = as_key_array(keys)
        if keys.size == 0:
            return
        idx = self._select.indices(keys, self.num_registers)[:, 0]
        ranks = np.minimum(leading_zeros_32(self._value.values(keys)[:, 0]) + 1, 31)
        horizon_off = self.window
        for i, r in zip(idx.tolist(), ranks.tolist()):
            t = self.t
            q = self._lpfm[i]
            # drop entries dominated by the new one (older, rank <= r)
            while q and q[-1][1] <= r:
                q.pop()
            # drop expired entries from the front
            horizon = t - horizon_off
            while q and q[0][0] <= horizon:
                q.pop(0)
            q.append((t, r))
            self.t += 1

    def cardinality(self) -> float:
        """Standard HLL estimate using each register's in-window max rank."""
        m = self.num_registers
        horizon = self.t - self.window
        regs = np.zeros(m, dtype=np.float64)
        for i, q in enumerate(self._lpfm):
            # entries are rank-decreasing front-to-back, timestamps
            # increasing; the first non-expired entry has the max rank
            rank = 0
            for ts, r in q:
                if ts > horizon:
                    rank = r
                    break
            regs[i] = rank
        z = float(np.sum(np.exp2(-regs)))
        est = hll_alpha(m) * m * m / z
        if est <= 2.5 * m:
            zeros = int(np.count_nonzero(regs == 0))
            if zeros > 0:
                est = m * float(np.log(m / zeros))
        return est

    @property
    def memory_bytes(self) -> int:
        """Live size: every LPFM entry costs a timestamp plus a rank."""
        entries = sum(len(q) for q in self._lpfm)
        return (entries * _ENTRY_BITS + 7) // 8

    def reset(self) -> None:
        self._lpfm = [[] for _ in range(self.num_registers)]
        self.t = 0
