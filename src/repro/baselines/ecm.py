"""ECM-sketch (Papapetrou, Garofalakis & Deligiannakis, VLDB '12).

A Count-Min sketch whose counters are replaced by Exponential
Histograms: each of the k hashed "counters" is a windowed DGIM counter,
so frequency queries return the minimum *windowed* count.  Accurate
expiry, but each counter costs O(k_eh * log N) buckets of timestamp +
size — the memory pressure that makes it lose to SHE-CM at small
budgets (Fig. 9c).

Following §7.1 we use 4 hash functions.  ``memory_bytes`` reports the
live bucket footprint; :meth:`from_memory` sizes the counter array from
the *budgeted* per-counter bucket bound the ECM paper provisions for.
"""

from __future__ import annotations

import numpy as np

from repro.common.hashing import HashFamily
from repro.common.validation import as_key_array, require_positive_int
from repro.baselines.expohist import ExponentialHistogram

__all__ = ["EcmSketch"]


class EcmSketch:
    """Count-Min over Exponential-Histogram counters.

    Args:
        window: sliding-window size N.
        num_counters: number of EH counters M.
        num_hashes: CM hash functions (paper setting: 4).
        eh_k: per-EH inverse-error knob.
        seed: hash seed.
    """

    def __init__(
        self,
        window: int,
        num_counters: int,
        num_hashes: int = 4,
        *,
        eh_k: int = 8,
        seed: int = 37,
    ):
        self.window = require_positive_int("window", window)
        self.num_counters = require_positive_int("num_counters", num_counters)
        self.num_hashes = require_positive_int("num_hashes", num_hashes)
        self.eh_k = require_positive_int("eh_k", eh_k)
        self._hash = HashFamily(self.num_hashes, seed=seed)
        self.counters = [
            ExponentialHistogram(window, eh_k) for _ in range(self.num_counters)
        ]
        self.t = 0

    @classmethod
    def budget_buckets_per_counter(cls, window: int, eh_k: int = 8) -> int:
        """Bucket provisioning per counter: (k/2 + 2) per size class."""
        classes = max(1, int(np.ceil(np.log2(window + 1))) + 1)
        return (eh_k // 2 + 2) * classes

    @classmethod
    def from_memory(
        cls,
        window: int,
        memory_bytes: int,
        num_hashes: int = 4,
        *,
        eh_k: int = 8,
        seed: int = 37,
    ) -> "EcmSketch":
        """Size the counter array from the provisioned bucket budget."""
        require_positive_int("memory_bytes", memory_bytes)
        per_counter_bits = (
            cls.budget_buckets_per_counter(window, eh_k)
            * ExponentialHistogram.BUCKET_BITS
        )
        m = (memory_bytes * 8) // per_counter_bits
        if m < 1:
            raise ValueError(
                f"{memory_bytes} B holds no EH counter "
                f"(~{per_counter_bits // 8} B each at window {window})"
            )
        return cls(window, m, num_hashes, eh_k=eh_k, seed=seed)

    def insert(self, key: int) -> None:
        """Add 1 to the k hashed EH counters at the current time."""
        self.insert_many(np.asarray([key], dtype=np.uint64))

    def insert_many(self, keys) -> None:
        """Insert a batch in arrival order."""
        keys = as_key_array(keys)
        if keys.size == 0:
            return
        idx = self._hash.indices(keys, self.num_counters)
        counters = self.counters
        t = self.t
        for row in idx:
            for j in row:
                counters[j].add(t)
            t += 1
        self.t = t

    def frequency(self, key: int) -> float:
        """Min over the k hashed windowed counts."""
        return float(self.frequency_many(np.asarray([key], dtype=np.uint64))[0])

    def frequency_many(self, keys) -> np.ndarray:
        """Vectorised frequency estimates."""
        keys = as_key_array(keys)
        idx = self._hash.indices(keys, self.num_counters)
        t = self.t
        out = np.empty(idx.shape[0], dtype=np.float64)
        for i, row in enumerate(idx):
            out[i] = min(self.counters[j].query(t) for j in row)
        return out

    @property
    def memory_bytes(self) -> int:
        """Live footprint: every bucket in every counter."""
        buckets = sum(c.num_buckets for c in self.counters)
        return (buckets * ExponentialHistogram.BUCKET_BITS + 7) // 8

    @property
    def budgeted_memory_bytes(self) -> int:
        """Provisioned footprint the structure was sized for."""
        per = self.budget_buckets_per_counter(self.window, self.eh_k)
        return (
            self.num_counters * per * ExponentialHistogram.BUCKET_BITS + 7
        ) // 8

    def reset(self) -> None:
        for c in self.counters:
            c.reset()
        self.t = 0
