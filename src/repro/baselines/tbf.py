"""Timing Bloom Filter (Zhang & Guan, ICDCS '08).

Like TOBF but memory-conscious: slots store the arrival time *modulo*
a wraparound range ``L = 2^b`` (the paper's §7.1 uses b = 18-bit
counters), and every insertion actively scans a small piece of the
array to clear entries older than the window — without the scan,
wrapped times would become ambiguous once an entry's age exceeded
``L``.  The scan advances ``ceil(M / N)`` slots per insertion so the
whole array is visited once per window, which both keeps wrapped times
unambiguous (``L > 2N`` in all our configurations) and bounds a live
entry's age to ``< 2N``.

A slot stores ``(t mod L) + 1`` with 0 meaning empty, costing ``b``
bits — an 18/64 saving over TOBF, at the price of per-insert scan work.
"""

from __future__ import annotations

import numpy as np

from repro.common.hashing import HashFamily
from repro.common.validation import as_key_array, require_positive_int

__all__ = ["TimingBloomFilter"]


class TimingBloomFilter:
    """Bloom filter over wraparound time counters with active scrubbing."""

    def __init__(
        self,
        window: int,
        num_slots: int,
        num_hashes: int = 8,
        *,
        counter_bits: int = 18,
        seed: int = 36,
    ):
        self.window = require_positive_int("window", window)
        self.num_slots = require_positive_int("num_slots", num_slots)
        self.num_hashes = require_positive_int("num_hashes", num_hashes)
        self.counter_bits = require_positive_int("counter_bits", counter_bits)
        self.wrap = 1 << counter_bits
        if self.wrap <= 2 * window:
            raise ValueError(
                f"counter_bits={counter_bits} gives wrap {self.wrap}, which "
                f"must exceed 2x the window ({2 * window}) for unambiguous ages"
            )
        self._hash = HashFamily(self.num_hashes, seed=seed)
        # stored value: (t mod (wrap - 1)) + 1; 0 = empty.  We keep the
        # true time internally *only* for the scrubber's exactness check
        # in tests; queries use the wrapped arithmetic.
        self.slots = np.zeros(self.num_slots, dtype=np.uint32)
        self._scan_pos = 0
        self._scan_debt = 0.0
        self.t = 0

    @classmethod
    def from_memory(
        cls,
        window: int,
        memory_bytes: int,
        num_hashes: int = 8,
        *,
        counter_bits: int = 18,
        seed: int = 36,
    ) -> "TimingBloomFilter":
        """Size for a budget of b-bit slots."""
        require_positive_int("memory_bytes", memory_bytes)
        m = (memory_bytes * 8) // counter_bits
        if m < 1:
            raise ValueError(f"{memory_bytes} B holds no {counter_bits}-bit slot")
        return cls(window, m, num_hashes, counter_bits=counter_bits, seed=seed)

    # wrapped-time helpers ---------------------------------------------------

    def _wrapped(self, t) -> np.ndarray:
        return (np.asarray(t, dtype=np.int64) % (self.wrap - 1)) + 1

    def _age(self, stored: np.ndarray, t_now: int) -> np.ndarray:
        """Age of non-empty stored stamps at ``t_now`` (wrapped diff)."""
        now_w = int(self._wrapped(t_now))
        return (now_w - stored.astype(np.int64)) % (self.wrap - 1)

    def _scrub(self, upto_t: int, budget: int) -> None:
        """Clear expired entries over the next ``budget`` scan positions."""
        if budget <= 0:
            return
        m = self.num_slots
        budget = min(budget, m)
        pos = self._scan_pos
        idx = (pos + np.arange(budget)) % m
        vals = self.slots[idx]
        live = vals != 0
        if np.any(live):
            ages = self._age(vals[live], upto_t)
            dead = ages > self.window
            kill = idx[live][dead]
            self.slots[kill] = 0
        self._scan_pos = (pos + budget) % m

    # stream -----------------------------------------------------------------

    def insert(self, key: int) -> None:
        """Stamp k slots with the wrapped time, scrubbing as we go."""
        self.insert_many(np.asarray([key], dtype=np.uint64))

    def insert_many(self, keys) -> None:
        """Batch insert; the scrubber advances M/N slots per item."""
        keys = as_key_array(keys)
        if keys.size == 0:
            return
        idx = self._hash.indices(keys, self.num_slots)
        rate = self.num_slots / self.window
        # chunked so the scrubber interleaves at sub-window granularity
        step = max(1, self.window // 64)
        for lo in range(0, keys.size, step):
            sub = idx[lo : lo + step]
            n = sub.shape[0]
            times = self.t + np.arange(n, dtype=np.int64)
            # within a chunk later writes win; same-slot collisions keep
            # the newest stamp, as arrival order dictates
            flat = sub.reshape(-1)
            stamps = np.repeat(self._wrapped(times), self.num_hashes)
            self.slots[flat] = stamps
            self.t += n
            self._scan_debt += rate * n
            budget = int(self._scan_debt)
            self._scan_debt -= budget
            self._scrub(self.t, budget)

    def contains(self, key: int) -> bool:
        """Present iff every hashed slot is non-empty and age < N."""
        return bool(self.contains_many(np.asarray([key], dtype=np.uint64))[0])

    def contains_many(self, keys) -> np.ndarray:
        """Vectorised membership."""
        keys = as_key_array(keys)
        idx = self._hash.indices(keys, self.num_slots)
        vals = self.slots[idx.reshape(-1)]
        fresh = (vals != 0) & (self._age(vals, self.t) <= self.window)
        return np.all(fresh.reshape(idx.shape), axis=1)

    @property
    def memory_bytes(self) -> int:
        return (self.num_slots * self.counter_bits + 7) // 8

    def reset(self) -> None:
        self.slots.fill(0)
        self._scan_pos = 0
        self._scan_debt = 0.0
        self.t = 0
