"""Time-Out Bloom Filter (Kong et al., ICOIN '06).

A Bloom filter whose bits are replaced by full arrival timestamps: an
insertion stamps all k hashed slots; a query reports *present* only if
every hashed slot was stamped within the window.  Like TSV, expiry is
exact but each slot costs 64 bits (§7.1), so at equal memory TOBF has
far fewer slots than SHE-BF has bits — the 100x FPR gap of Fig. 9d.
"""

from __future__ import annotations

import numpy as np

from repro.common.hashing import HashFamily
from repro.common.validation import as_key_array, require_positive_int

__all__ = ["TimeOutBloomFilter"]

_TS_BITS = 64


class TimeOutBloomFilter:
    """Bloom filter over 64-bit timestamp slots."""

    def __init__(self, window: int, num_slots: int, num_hashes: int = 8, *, seed: int = 35):
        self.window = require_positive_int("window", window)
        self.num_slots = require_positive_int("num_slots", num_slots)
        self.num_hashes = require_positive_int("num_hashes", num_hashes)
        self._hash = HashFamily(self.num_hashes, seed=seed)
        self.stamps = np.full(self.num_slots, -1, dtype=np.int64)
        self.t = 0

    @classmethod
    def from_memory(
        cls, window: int, memory_bytes: int, num_hashes: int = 8, *, seed: int = 35
    ) -> "TimeOutBloomFilter":
        """Size for a budget of 64-bit slots."""
        require_positive_int("memory_bytes", memory_bytes)
        m = (memory_bytes * 8) // _TS_BITS
        if m < 1:
            raise ValueError(f"{memory_bytes} B holds no 64-bit timestamp slot")
        return cls(window, m, num_hashes, seed=seed)

    def insert(self, key: int) -> None:
        """Stamp the k hashed slots with the current time."""
        self.insert_many(np.asarray([key], dtype=np.uint64))

    def insert_many(self, keys) -> None:
        """Vectorised batch insert."""
        keys = as_key_array(keys)
        if keys.size == 0:
            return
        idx = self._hash.indices(keys, self.num_slots)
        times = np.repeat(self.t + np.arange(keys.size, dtype=np.int64), self.num_hashes)
        np.maximum.at(self.stamps, idx.reshape(-1), times)
        self.t += int(keys.size)

    def contains(self, key: int) -> bool:
        """Present iff every hashed slot is stamped within the window."""
        return bool(self.contains_many(np.asarray([key], dtype=np.uint64))[0])

    def contains_many(self, keys) -> np.ndarray:
        """Vectorised membership."""
        keys = as_key_array(keys)
        idx = self._hash.indices(keys, self.num_slots)
        horizon = max(self.t - self.window, 0)
        fresh = self.stamps[idx.reshape(-1)].reshape(idx.shape) >= horizon
        return np.all(fresh, axis=1)

    @property
    def memory_bytes(self) -> int:
        return (self.num_slots * _TS_BITS + 7) // 8

    def reset(self) -> None:
        self.stamps.fill(-1)
        self.t = 0
