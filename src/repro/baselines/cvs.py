"""Counter Vector Sketch (Shan et al., Neurocomputing 2016).

A bitmap-like cardinality estimator whose "bits" are small saturating
counters: inserting sets the hashed counter to the maximum value ``c``;
after every insertion a few *random* counters are decremented, so a
counter drains to zero roughly one window after its key stops arriving.
The decrement rate is ``M * c / N`` counters per insertion — the rate
at which a full sweep of ``M*c`` decrements spreads over one window.

Query is the bitmap MLE on the zero/non-zero pattern.  The randomness
of the decay is CVS's documented weakness (§2.2): two counters of equal
age can die at very different times, which inflates the estimator's
variance relative to SHE-BM's deterministic sweep.
"""

from __future__ import annotations

import numpy as np

from repro.common.hashing import HashFamily
from repro.common.validation import as_key_array, require_positive_int

__all__ = ["CounterVectorSketch"]


class CounterVectorSketch:
    """Bitmap with randomly decaying saturating counters.

    Args:
        window: sliding-window size N.
        num_counters: M counters.
        max_value: saturation value c (paper setting: 10).
        seed: hash + decay RNG seed.
    """

    def __init__(self, window: int, num_counters: int, *, max_value: int = 10, seed: int = 33):
        self.window = require_positive_int("window", window)
        self.num_counters = require_positive_int("num_counters", num_counters)
        self.max_value = require_positive_int("max_value", max_value)
        self._hash = HashFamily(1, seed=seed)
        self._rng = np.random.default_rng(seed)
        self.counters = np.zeros(self.num_counters, dtype=np.int8)
        # fractional decrements owed, carried between insertions
        self._decay_debt = 0.0
        self._rate = self.num_counters * self.max_value / self.window
        self.t = 0

    @classmethod
    def from_memory(cls, window: int, memory_bytes: int, *, max_value: int = 10, seed: int = 33) -> "CounterVectorSketch":
        """Size for a budget of ceil(log2(c+1))-bit counters."""
        require_positive_int("memory_bytes", memory_bytes)
        bits_per = max(1, int(np.ceil(np.log2(max_value + 1))))
        m = (memory_bytes * 8) // bits_per
        if m < 1:
            raise ValueError(f"{memory_bytes} B holds no {bits_per}-bit counter")
        return cls(window, m, max_value=max_value, seed=seed)

    def insert(self, key: int) -> None:
        """Set the hashed counter to c, then decay random counters."""
        self.insert_many(np.asarray([key], dtype=np.uint64))

    def insert_many(self, keys) -> None:
        """Batch insert: sets then the batch's worth of random decay.

        Exactness note: within a batch we apply all the sets first and
        then the accumulated decay.  Interleaving differs from per-item
        processing only in which random counters get decremented — the
        process is random either way, so callers should keep batches
        well below N (the metrics harness uses N/8 chunks).
        """
        keys = as_key_array(keys)
        if keys.size == 0:
            return
        idx = self._hash.indices(keys, self.num_counters)[:, 0]
        # process in sub-batches to keep set/decay interleaving fine-grained
        step = max(1, self.window // 64)
        for lo in range(0, keys.size, step):
            sub = idx[lo : lo + step]
            self.counters[sub] = self.max_value
            self._decay_debt += self._rate * sub.size
            n_dec = int(self._decay_debt)
            self._decay_debt -= n_dec
            if n_dec:
                victims = self._rng.integers(0, self.num_counters, size=n_dec)
                dec = np.zeros(self.num_counters, dtype=np.int64)
                np.add.at(dec, victims, 1)
                np.subtract(
                    self.counters,
                    np.minimum(dec, self.counters.astype(np.int64)).astype(np.int8),
                    out=self.counters,
                )
            self.t += int(sub.size)

    def cardinality(self) -> float:
        """Bitmap MLE on the non-zero pattern: -M * ln(zeros / M)."""
        zeros = int(np.count_nonzero(self.counters == 0))
        if zeros == 0:
            zeros = 0.5
        return -float(self.num_counters) * float(np.log(zeros / self.num_counters))

    @property
    def memory_bytes(self) -> int:
        bits_per = max(1, int(np.ceil(np.log2(self.max_value + 1))))
        return (self.num_counters * bits_per + 7) // 8

    def reset(self) -> None:
        self.counters.fill(0)
        self._decay_debt = 0.0
        self.t = 0
