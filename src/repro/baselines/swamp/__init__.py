"""SWAMP baseline (fingerprint queue + TinyTable)."""

from repro.baselines.swamp.swamp import Swamp
from repro.baselines.swamp.tinytable import TinyTable

__all__ = ["Swamp", "TinyTable"]
