"""SWAMP (Assaf et al., INFOCOM '18) — the paper's main generic rival.

A cyclic queue holds the f-bit fingerprints of the last W items; a
TinyTable counts them.  On arrival the oldest fingerprint is evicted
from both.  One structure then answers membership (``ISMEMBER``:
fingerprint present), cardinality (``DISTINCT`` MLE over observed
distinct fingerprints) and frequency (fingerprint count) — the
versatility §2.2 credits it with, at ``O(W)`` space, which is the
weakness Fig. 9 exploits.

Memory model: ``W`` queue slots of f bits plus a TinyTable sized for
``(1 + gamma) * W`` entries, matching the SWAMP paper's ~1.2 load
budget.  :meth:`from_memory` inverts this to pick the largest feasible
fingerprint width for a byte budget — exactly how the paper's
memory-sweep figures trade accuracy for space.
"""

from __future__ import annotations

import math

import numpy as np

from repro.common.hashing import HashFamily
from repro.common.validation import as_key_array, require_positive_int
from repro.baselines.swamp.tinytable import TinyTable

__all__ = ["Swamp"]


class Swamp:
    """Sliding-window fingerprint queue + counting table.

    Args:
        window: W, the number of items kept.
        fingerprint_bits: fingerprint width f (1..60).
        gamma: TinyTable over-provisioning factor (default 0.2).
        seed: fingerprint hash seed.
    """

    def __init__(self, window: int, fingerprint_bits: int, *, gamma: float = 0.2, seed: int = 31):
        self.window = require_positive_int("window", window)
        if not 1 <= fingerprint_bits <= 60:
            raise ValueError(
                f"fingerprint_bits must be in [1, 60], got {fingerprint_bits}"
            )
        self.fingerprint_bits = int(fingerprint_bits)
        self.gamma = float(gamma)
        self._fp_space = 1 << self.fingerprint_bits
        self._hash = HashFamily(1, seed=seed)
        self._queue = np.zeros(self.window, dtype=np.uint64)
        cap = int(math.ceil((1.0 + gamma) * window))
        # buckets cannot outnumber a quarter of the fingerprint space,
        # or bucketing degenerates for narrow fingerprints
        buckets = max(1, min(cap // 4, self._fp_space // 4))
        self.table = TinyTable(
            capacity=cap,
            fingerprint_bits=self.fingerprint_bits,
            num_buckets=buckets,
        )
        self.t = 0

    @staticmethod
    def _memory_bits(window: int, fingerprint_bits: int, gamma: float) -> int:
        """Mirror of ``memory_bytes`` without building the structure."""
        cap = int(math.ceil((1.0 + gamma) * window))
        buckets = max(1, min(cap // 4, (1 << fingerprint_bits) // 4))
        rem = max(1, fingerprint_bits - max(0, int(math.log2(buckets))))
        return window * fingerprint_bits + cap * (rem + TinyTable.COUNTER_BITS)

    @classmethod
    def from_memory(cls, window: int, memory_bytes: int, *, gamma: float = 0.2, seed: int = 31) -> "Swamp":
        """Choose the widest fingerprint whose structure fits the budget.

        SWAMP's space is O(W) regardless of f — below its floor (about
        ``W * (1 + 5*(1+gamma)) / 8`` bytes) this raises, mirroring the
        empty leftmost points of the paper's memory sweeps.
        """
        require_positive_int("memory_bytes", memory_bytes)
        total_bits = memory_bytes * 8
        best = 0
        for f in range(1, 61):  # memory is monotone in f
            if cls._memory_bits(window, f, gamma) <= total_bits:
                best = f
            else:
                break
        if best == 0:
            floor_bytes = (cls._memory_bits(window, 1, gamma) + 7) // 8
            raise ValueError(
                f"{memory_bytes} B cannot hold a SWAMP of window {window} "
                f"(its O(W) floor is ~{floor_bytes} B)"
            )
        return cls(window, best, gamma=gamma, seed=seed)

    # -- stream -----------------------------------------------------------

    def _fingerprint(self, keys: np.ndarray) -> np.ndarray:
        return self._hash.values(keys)[:, 0] % np.uint64(self._fp_space)

    def insert(self, key: int) -> None:
        """Insert one item, evicting the item leaving the window."""
        self.insert_many(np.asarray([key], dtype=np.uint64))

    def insert_many(self, keys) -> None:
        """Insert a batch in arrival order."""
        keys = as_key_array(keys)
        if keys.size == 0:
            return
        fps = self._fingerprint(keys)
        for fp in fps:
            pos = self.t % self.window
            if self.t >= self.window:
                self.table.remove(int(self._queue[pos]))
            self._queue[pos] = fp
            self.table.add(int(fp))
            self.t += 1

    # -- estimators (the SWAMP paper's query suite) -------------------------

    def contains(self, key: int) -> bool:
        """ISMEMBER: is the key's fingerprint in the window?"""
        fp = int(self._fingerprint(np.asarray([key], dtype=np.uint64))[0])
        return fp in self.table

    def contains_many(self, keys) -> np.ndarray:
        """Vectorised ISMEMBER."""
        fps = self._fingerprint(as_key_array(keys))
        return np.fromiter((int(fp) in self.table for fp in fps), dtype=bool)

    def cardinality(self) -> float:
        """DISTINCT: MLE inversion of observed distinct fingerprints.

        With D distinct keys hashing into L = 2^f fingerprints, the
        expected distinct-fingerprint count is L*(1 - (1 - 1/L)^D);
        inverting at the observed d gives the MLE.
        """
        d = self.table.distinct
        L = self._fp_space
        if d >= L:
            d = L - 1  # fingerprint space saturated
        if d == 0:
            return 0.0
        return math.log1p(-d / L) / math.log1p(-1.0 / L)

    def frequency(self, key: int) -> int:
        """FREQUENCY: the fingerprint's count (overestimates on collision)."""
        fp = int(self._fingerprint(np.asarray([key], dtype=np.uint64))[0])
        return self.table.count(fp)

    def frequency_many(self, keys) -> np.ndarray:
        """Vectorised FREQUENCY."""
        fps = self._fingerprint(as_key_array(keys))
        return np.fromiter((self.table.count(int(fp)) for fp in fps), dtype=np.int64)

    @property
    def memory_bytes(self) -> int:
        queue_bits = self.window * self.fingerprint_bits
        return (queue_bits + 7) // 8 + self.table.memory_bytes

    def reset(self) -> None:
        self._queue.fill(0)
        self.table.reset()
        self.t = 0
