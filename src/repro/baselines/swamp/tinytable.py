"""TinyTable-style counting fingerprint table (SWAMP's substrate).

SWAMP (Assaf et al., INFOCOM '18) stores the fingerprints of the W
window items in a TinyTable (Einziger & Friedman 2015): a bucketed,
chained fingerprint store supporting add / remove / count.  We keep the
same *behaviour* — exact multiset counting of truncated fingerprints,
with bucket chaining — and account memory the way TinyTable does: a
fixed slot capacity of ``(1 + gamma) * W`` entries, each holding the
fingerprint remainder plus a small counter field.

The error SWAMP exhibits comes entirely from fingerprint truncation
(two distinct keys sharing an f-bit fingerprint), which this structure
reproduces exactly.  The paper's §2.3 argument — chained buckets cause
unbounded concurrent memory access ("domino effect") on hardware — is
modelled by :mod:`repro.hardware.constraints`, which inspects the
bucket-spill statistics this class records.
"""

from __future__ import annotations

import numpy as np

from repro.common.validation import require_positive_int

__all__ = ["TinyTable"]


class TinyTable:
    """Bucketed counting table of fingerprints.

    Args:
        capacity: slot budget (entries the table is sized for).
        fingerprint_bits: width f of stored fingerprints.
        num_buckets: buckets the fingerprint space is split over
            (defaults to ``capacity // 4`` as in TinyTable's 4-slot
            buckets).
    """

    #: counter field width charged per slot (TinyTable varint ~ 4 bits)
    COUNTER_BITS = 4

    def __init__(self, capacity: int, fingerprint_bits: int, num_buckets: int | None = None):
        self.capacity = require_positive_int("capacity", capacity)
        self.fingerprint_bits = require_positive_int("fingerprint_bits", fingerprint_bits)
        if num_buckets is None:
            num_buckets = max(1, capacity // 4)
        self.num_buckets = require_positive_int("num_buckets", num_buckets)
        # bucket -> {remainder: count}; exact chaining, like TinyTable's
        # overflow-to-neighbour but without capacity loss.
        self._buckets: list[dict[int, int]] = [dict() for _ in range(self.num_buckets)]
        self._distinct = 0
        self._size = 0
        #: how many entries ever spilled past a 4-slot bucket (the
        #: "domino effect" statistic the constraint checker reads)
        self.spill_events = 0

    def _locate(self, fingerprint: int) -> tuple[int, int]:
        b = fingerprint % self.num_buckets
        rem = fingerprint // self.num_buckets
        return b, rem

    def add(self, fingerprint: int) -> None:
        """Insert one occurrence of ``fingerprint``."""
        b, rem = self._locate(int(fingerprint))
        bucket = self._buckets[b]
        if rem not in bucket:
            self._distinct += 1
            if len(bucket) >= 4:
                self.spill_events += 1
        bucket[rem] = bucket.get(rem, 0) + 1
        self._size += 1

    def remove(self, fingerprint: int) -> None:
        """Remove one occurrence of ``fingerprint`` (must be present)."""
        b, rem = self._locate(int(fingerprint))
        bucket = self._buckets[b]
        cnt = bucket.get(rem)
        if cnt is None:
            raise KeyError(f"fingerprint {fingerprint} not present")
        if cnt == 1:
            del bucket[rem]
            self._distinct -= 1
        else:
            bucket[rem] = cnt - 1
        self._size -= 1

    def count(self, fingerprint: int) -> int:
        """Multiplicity of ``fingerprint`` in the table."""
        b, rem = self._locate(int(fingerprint))
        return self._buckets[b].get(rem, 0)

    def __contains__(self, fingerprint: int) -> bool:
        return self.count(fingerprint) > 0

    @property
    def distinct(self) -> int:
        """Number of distinct fingerprints stored."""
        return self._distinct

    @property
    def size(self) -> int:
        """Total stored occurrences."""
        return self._size

    @property
    def memory_bytes(self) -> int:
        """Budgeted memory: capacity slots x (remainder + counter bits)."""
        rem_bits = max(1, self.fingerprint_bits - max(0, int(np.log2(self.num_buckets))))
        bits = self.capacity * (rem_bits + self.COUNTER_BITS)
        return (bits + 7) // 8

    def reset(self) -> None:
        for b in self._buckets:
            b.clear()
        self._distinct = 0
        self._size = 0
        self.spill_events = 0
