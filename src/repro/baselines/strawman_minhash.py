"""Straw-man sliding MinHash (§7.1's SHE-MH comparison point).

MinHash "modified by adding a 64-bit timestamp for each pair of
counters to indicate if the counters need to be cleaned": the timestamp
records when the stored minimum was last (re)set.  On insertion, an
expired counter restarts from the new hash; otherwise the usual min-
merge applies (refreshing the timestamp only when the new value wins).

The structural flaw the paper exploits: a small minimum *sticks* for a
full window from the moment it was set, even if the item that produced
it left the window long ago — so the effective window per counter
stretches up to 2N and drifts per counter, biasing the similarity
estimate.  Memory: 2 * M * (24 + 64) bits, the timestamps tripling the
per-counter cost versus SHE-MH's single mark bit.
"""

from __future__ import annotations

import numpy as np

from repro.common.hashing import splitmix64
from repro.common.validation import as_key_array, require_positive_int

__all__ = ["StrawmanMinHash"]

_HASH_BITS = 24
_EMPTY = (1 << _HASH_BITS) - 1
_TS_BITS = 64


class StrawmanMinHash:
    """Two-stream MinHash with per-counter expiry timestamps."""

    def __init__(self, window: int, num_counters: int, *, seed: int = 38):
        self.window = require_positive_int("window", window)
        self.num_counters = require_positive_int("num_counters", num_counters)
        cols = np.arange(self.num_counters, dtype=np.uint64)
        self._col_seeds = splitmix64(
            cols * np.uint64(0x9E3779B97F4A7C15) + np.uint64(seed)
        )
        self.minima = np.full((2, self.num_counters), _EMPTY, dtype=np.uint32)
        self.stamps = np.full((2, self.num_counters), -1, dtype=np.int64)
        self.counts = [0, 0]

    @classmethod
    def from_memory(cls, window: int, memory_bytes: int, *, seed: int = 38) -> "StrawmanMinHash":
        """Size for a total budget covering values + timestamps, both sides."""
        require_positive_int("memory_bytes", memory_bytes)
        per_counter_bits = 2 * (_HASH_BITS + _TS_BITS)
        m = (memory_bytes * 8) // per_counter_bits
        if m < 1:
            raise ValueError(f"{memory_bytes} B holds no timestamped counter pair")
        return cls(window, m, seed=seed)

    def _column_hashes(self, keys: np.ndarray) -> np.ndarray:
        return (
            splitmix64(keys[:, None] ^ self._col_seeds[None, :])
            & np.uint64(_EMPTY)
        ).astype(np.uint32)

    def insert(self, side: int, key: int) -> None:
        """Insert one item into stream ``side``."""
        self.insert_many(side, np.asarray([key], dtype=np.uint64))

    def insert_many(self, side: int, keys) -> None:
        """Insert a batch into one stream (item-at-a-time semantics)."""
        if side not in (0, 1):
            raise ValueError(f"side must be 0 or 1, got {side}")
        keys = as_key_array(keys)
        if keys.size == 0:
            return
        vals = self._column_hashes(keys)  # (B, M)
        minima = self.minima[side]
        stamps = self.stamps[side]
        t = self.counts[side]
        for b in range(keys.size):
            expired = stamps <= t - self.window
            take = expired | (vals[b] < minima)
            minima[take] = vals[b][take]
            stamps[take] = t
            t += 1
        self.counts[side] = t

    def similarity(self) -> float:
        """Match fraction over counter pairs valid on both sides."""
        v0 = self.stamps[0] > self.counts[0] - self.window
        v1 = self.stamps[1] > self.counts[1] - self.window
        valid = v0 & v1
        k = int(np.count_nonzero(valid))
        if k == 0:
            return 0.0
        u = int(np.count_nonzero(self.minima[0][valid] == self.minima[1][valid]))
        return u / k

    @property
    def memory_bytes(self) -> int:
        bits = 2 * self.num_counters * (_HASH_BITS + _TS_BITS)
        return (bits + 7) // 8

    def reset(self) -> None:
        self.minima.fill(_EMPTY)
        self.stamps.fill(-1)
        self.counts = [0, 0]
