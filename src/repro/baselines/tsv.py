"""Timestamp-Vector (Kim & O'Hallaron, GLOBECOM '03).

A bitmap whose bits are replaced by full arrival timestamps: insertion
writes the current time at the hashed position; a position is *active*
if its timestamp falls inside the window.  Cardinality is the bitmap
MLE over the active pattern.  Perfectly accurate expiry — but each
"bit" costs 64 bits (§7.1 setting), which is exactly the memory
inefficiency §2.2 calls out and Fig. 9a shows.
"""

from __future__ import annotations

import numpy as np

from repro.common.hashing import HashFamily
from repro.common.validation import as_key_array, require_positive_int

__all__ = ["TimestampVector"]

_TS_BITS = 64


class TimestampVector:
    """Bitmap with per-slot 64-bit timestamps."""

    def __init__(self, window: int, num_slots: int, *, seed: int = 34):
        self.window = require_positive_int("window", window)
        self.num_slots = require_positive_int("num_slots", num_slots)
        self._hash = HashFamily(1, seed=seed)
        # -1 = never written
        self.stamps = np.full(self.num_slots, -1, dtype=np.int64)
        self.t = 0

    @classmethod
    def from_memory(cls, window: int, memory_bytes: int, *, seed: int = 34) -> "TimestampVector":
        """Size for a budget of 64-bit slots."""
        require_positive_int("memory_bytes", memory_bytes)
        m = (memory_bytes * 8) // _TS_BITS
        if m < 1:
            raise ValueError(f"{memory_bytes} B holds no 64-bit timestamp slot")
        return cls(window, m, seed=seed)

    def insert(self, key: int) -> None:
        """Stamp the hashed slot with the current time."""
        self.insert_many(np.asarray([key], dtype=np.uint64))

    def insert_many(self, keys) -> None:
        """Vectorised batch insert (later stamps win, as in arrival order)."""
        keys = as_key_array(keys)
        if keys.size == 0:
            return
        idx = self._hash.indices(keys, self.num_slots)[:, 0]
        times = self.t + np.arange(keys.size, dtype=np.int64)
        # identical slots keep the latest time: np.maximum.at is order-free
        np.maximum.at(self.stamps, idx, times)
        self.t += int(keys.size)

    def cardinality(self) -> float:
        """Bitmap MLE over slots stamped within the window."""
        # active iff the slot was stamped within the last N arrivals
        active = int(np.count_nonzero(self.stamps >= max(self.t - self.window, 0)))
        zeros = self.num_slots - active
        if zeros == 0:
            zeros = 0.5
        return -float(self.num_slots) * float(np.log(zeros / self.num_slots))

    @property
    def memory_bytes(self) -> int:
        return (self.num_slots * _TS_BITS + 7) // 8

    def reset(self) -> None:
        self.stamps.fill(-1)
        self.t = 0
