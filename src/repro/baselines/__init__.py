"""Sliding-window competitor algorithms from §2.2 / §7.1."""

from repro.baselines.cvs import CounterVectorSketch
from repro.baselines.ecm import EcmSketch
from repro.baselines.expohist import ExponentialHistogram
from repro.baselines.shll import SlidingHyperLogLog
from repro.baselines.strawman_minhash import StrawmanMinHash
from repro.baselines.swamp import Swamp, TinyTable
from repro.baselines.tbf import TimingBloomFilter
from repro.baselines.tobf import TimeOutBloomFilter
from repro.baselines.tsv import TimestampVector

__all__ = [
    "CounterVectorSketch",
    "EcmSketch",
    "ExponentialHistogram",
    "SlidingHyperLogLog",
    "StrawmanMinHash",
    "Swamp",
    "TinyTable",
    "TimingBloomFilter",
    "TimeOutBloomFilter",
    "TimestampVector",
]
