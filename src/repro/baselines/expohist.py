"""Exponential Histogram (Datar, Gionis, Indyk & Motwani, 2002).

The windowed counter ECM-sketch builds on: counts how many 1s occurred
in the last N time units with relative error <= 1/k, using O(k log N)
buckets of exponentially growing sizes.  When more than ``k//2 + 2``
buckets of one size exist, the two oldest merge into one of the next
size (keeping the newer timestamp), cascading upward.

Buckets are stored one deque per size class (newest at the left); the
EH invariant — bucket sizes are non-decreasing with age — means a
merged bucket is always newer than everything already in the next
class, so merging is an O(1) deque rotation and the whole structure is
O(1) amortised per update.

Query sums all unexpired buckets minus half the oldest (its true
overlap with the window is unknown) — the classic DGIM estimator.
"""

from __future__ import annotations

from collections import deque

from repro.common.validation import require_non_negative_int, require_positive_int

__all__ = ["ExponentialHistogram"]


class ExponentialHistogram:
    """DGIM counter over a sliding window.

    Args:
        window: window size N in time units.
        k: inverse relative-error knob; estimate error <= 1/k.
    """

    #: bits charged per bucket: 32-bit timestamp + 8-bit size exponent
    BUCKET_BITS = 40

    def __init__(self, window: int, k: int = 8):
        self.window = require_positive_int("window", window)
        self.k = require_positive_int("k", k)
        self._cap = self.k // 2 + 2
        # per-exponent deques of "newest timestamp in bucket", newest left
        self._classes: list[deque[int]] = [deque()]
        self._total = 0  # sum of live bucket sizes
        self._last_t = -1

    def add(self, t: int, amount: int = 1) -> None:
        """Record ``amount`` ones at time ``t`` (non-decreasing)."""
        require_non_negative_int("t", t)
        if t < self._last_t:
            raise ValueError(
                f"timestamps must be non-decreasing, got {t} < {self._last_t}"
            )
        self._last_t = t
        classes = self._classes
        for _ in range(amount):
            classes[0].appendleft(t)
            self._total += 1
            e = 0
            while len(classes[e]) > self._cap:
                # merge the two oldest buckets of class e; the merged
                # bucket keeps the newer timestamp and is newer than
                # everything already in class e+1
                older = classes[e].pop()
                newer = classes[e].pop()
                del older
                if e + 1 >= len(classes):
                    classes.append(deque())
                classes[e + 1].appendleft(newer)
                e += 1
        self._expire(t)

    def _expire(self, t_now: int) -> None:
        """Drop buckets wholly outside the window (oldest = largest class)."""
        horizon = t_now - self.window
        for e in range(len(self._classes) - 1, -1, -1):
            cls = self._classes[e]
            while cls and cls[-1] <= horizon:
                cls.pop()
                self._total -= 1 << e
            if cls:
                break  # smaller classes are strictly newer

    def query(self, t_now: int) -> float:
        """Estimated count of 1s in ``(t_now - N, t_now]``.

        The oldest bucket straddles the window edge: its newest event
        (the stored timestamp) is provably inside, the other ``size-1``
        are unknown, so we count half of them — exact when the oldest
        bucket has size 1, the classic DGIM midpoint otherwise.
        """
        self._expire(t_now)
        if self._total == 0:
            return 0.0
        # the oldest live bucket sits in the largest non-empty class
        for e in range(len(self._classes) - 1, -1, -1):
            if self._classes[e]:
                return self._total - ((1 << e) - 1) / 2.0
        return 0.0  # pragma: no cover - guarded by _total above

    @property
    def num_buckets(self) -> int:
        return sum(len(c) for c in self._classes)

    @property
    def memory_bytes(self) -> int:
        return (self.num_buckets * self.BUCKET_BITS + 7) // 8

    def reset(self) -> None:
        self._classes = [deque()]
        self._total = 0
        self._last_t = -1
