"""Hashing substrate shared by every sketch in the repository.

The paper uses BOBHash (Bob Jenkins' hash) as its hash function.  We keep
a faithful pure-Python BOBHash (the classic *lookup2* ``mix``/``hash``
construction) for reference and cross-checking, but the hot paths use a
vectorised splitmix64 family: the sketches only need uniform, seed-
independent hash values, and splitmix64 maps directly onto NumPy uint64
arithmetic so whole batches of keys hash in a handful of array ops.

All public helpers accept either a scalar key or a ``numpy`` array of
``uint64`` keys and are deterministic for a given seed.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "U64",
    "canonical_key",
    "canonical_keys",
    "splitmix64",
    "HashFamily",
    "leading_zeros_32",
    "BobHash",
    "fingerprints",
]

U64 = np.uint64
_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)

# splitmix64 constants (Steele, Lea & Flood; also used by xoshiro seeding).
_SM_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_SM_M1 = np.uint64(0xBF58476D1CE4E5B9)
_SM_M2 = np.uint64(0x94D049BB133111EB)


def canonical_key(key: int | str | bytes) -> int:
    """Map an arbitrary hashable key to a canonical unsigned 64-bit int.

    Integers are taken modulo 2**64; strings/bytes go through FNV-1a so
    that datasets of IP strings, URLs, etc. can feed the sketches.
    """
    if isinstance(key, (int, np.integer)):
        return int(key) & 0xFFFFFFFFFFFFFFFF
    if isinstance(key, str):
        key = key.encode("utf-8")
    if isinstance(key, (bytes, bytearray)):
        h = 0xCBF29CE484222325
        for b in key:
            h ^= b
            h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        return h
    raise TypeError(f"unsupported key type: {type(key).__name__}")


def canonical_keys(keys: Iterable[int | str | bytes] | np.ndarray) -> np.ndarray:
    """Vectorised :func:`canonical_key` returning a ``uint64`` array."""
    if isinstance(keys, np.ndarray) and keys.dtype.kind in "iu":
        return keys.astype(np.uint64, copy=False)
    return np.fromiter(
        (canonical_key(k) for k in keys), dtype=np.uint64
    )


def splitmix64(x: np.ndarray | int) -> np.ndarray | int:
    """One splitmix64 finalisation round: a high-quality 64->64 mixer.

    Works elementwise on ``uint64`` arrays.  Scalars round-trip through
    a 0-d array so overflow wraps exactly like the array path.
    """
    scalar = np.isscalar(x) or isinstance(x, (int, np.integer))
    z = np.asarray(x, dtype=np.uint64)
    with np.errstate(over="ignore"):
        z = (z + _SM_GAMMA) & _MASK64
        z = ((z ^ (z >> np.uint64(30))) * _SM_M1) & _MASK64
        z = ((z ^ (z >> np.uint64(27))) * _SM_M2) & _MASK64
        z = z ^ (z >> np.uint64(31))
    return int(z) if scalar else z


def splitmix64_inplace(z: np.ndarray, t: np.ndarray) -> np.ndarray:
    """In-place :func:`splitmix64` over ``z``, with scratch buffer ``t``.

    Bit-identical to the functional form (``uint64`` arithmetic wraps,
    so the explicit masks there are no-ops on arrays), but with two
    buffers total instead of a fresh temporary per sub-expression — on
    hot paths the allocator traffic dominates the arithmetic.
    """
    with np.errstate(over="ignore"):
        z += _SM_GAMMA
        np.right_shift(z, np.uint64(30), out=t)
        z ^= t
        z *= _SM_M1
        np.right_shift(z, np.uint64(27), out=t)
        z ^= t
        z *= _SM_M2
        np.right_shift(z, np.uint64(31), out=t)
        z ^= t
    return z


class HashFamily:
    """A family of ``k`` independent 64-bit hash functions.

    ``h_i(x) = splitmix64(x XOR seed_i)``, with the ``seed_i`` themselves
    derived from a master seed by splitmix64 — the classic way of
    spawning independent streams.

    The family exposes the two access patterns the sketches need:

    * :meth:`indices` — ``k`` cell indices per key (Bloom/CM style),
    * :meth:`values` — raw 64-bit hash values (HLL/MinHash style).
    """

    def __init__(self, k: int, seed: int = 0x5EED):
        if k < 1:
            raise ValueError(f"hash family needs k >= 1, got {k}")
        self.k = int(k)
        self.seed = int(seed)
        seeds = np.empty(self.k, dtype=np.uint64)
        s = np.uint64(seed & 0xFFFFFFFFFFFFFFFF)
        for i in range(self.k):
            with np.errstate(over="ignore"):
                s = (s + _SM_GAMMA) & _MASK64
            seeds[i] = splitmix64(int(s))
        self._seeds = seeds

    @property
    def seeds(self) -> np.ndarray:
        """The derived per-function seeds (read-only view)."""
        v = self._seeds.view()
        v.flags.writeable = False
        return v

    def values(self, keys: np.ndarray | int) -> np.ndarray:
        """Raw 64-bit hashes, shape ``(n, k)`` (or ``(k,)`` for a scalar)."""
        scalar = np.isscalar(keys) or isinstance(keys, (int, np.integer))
        arr = np.atleast_1d(np.asarray(keys, dtype=np.uint64))
        z = arr[:, None] ^ self._seeds[None, :]
        splitmix64_inplace(z, np.empty_like(z))
        return z[0] if scalar else z

    def value(self, key: int, i: int) -> int:
        """Scalar hash of ``key`` under the ``i``-th function."""
        return int(splitmix64(int(key) ^ int(self._seeds[i])))

    def indices(self, keys: np.ndarray | int, m: int) -> np.ndarray:
        """Cell indices in ``[0, m)``, shape ``(n, k)`` (``(k,)`` scalar)."""
        if m < 1:
            raise ValueError(f"modulus must be >= 1, got {m}")
        v = self.values(keys)
        if isinstance(v, np.ndarray):
            np.remainder(v, np.uint64(m), out=v)  # values() owns the buffer
            return v
        return v % np.uint64(m)

    def index(self, key: int, i: int, m: int) -> int:
        """Scalar index of ``key`` under the ``i``-th function."""
        return self.value(key, i) % m


def leading_zeros_32(values: np.ndarray | int) -> np.ndarray | int:
    """Number of leading zero bits in the low 32 bits of ``values``.

    HyperLogLog counts leading zeros of a 32-bit hash; an all-zero word
    reports 32.  Vectorised via a float64 exponent trick (exact because
    every 32-bit int is representable in float64).
    """
    scalar = np.isscalar(values) or isinstance(values, (int, np.integer))
    v = np.atleast_1d(np.asarray(values, dtype=np.uint64)) & np.uint64(0xFFFFFFFF)
    out = np.full(v.shape, 32, dtype=np.int64)
    nz = v != 0
    if np.any(nz):
        # bit_length(x) == floor(log2(x)) + 1, computed exactly via frexp
        _, exp = np.frexp(v[nz].astype(np.float64))
        out[nz] = 32 - exp
    return int(out[0]) if scalar else out


def fingerprints(keys: np.ndarray | int, bits: int, seed: int = 0xF1F0) -> np.ndarray | int:
    """``bits``-bit fingerprints of keys (used by SWAMP and TBF)."""
    if not 1 <= bits <= 64:
        raise ValueError(f"fingerprint width must be in [1, 64], got {bits}")
    fam = HashFamily(1, seed=seed)
    vals = fam.values(keys)
    mask = np.uint64((1 << bits) - 1)
    if isinstance(vals, np.ndarray) and vals.ndim == 2:
        return vals[:, 0] & mask
    return vals[0] & mask if isinstance(vals, np.ndarray) else int(vals) & int(mask)


class BobHash:
    """Pure-Python Bob Jenkins *lookup2* hash — the paper's BOBHash.

    Kept as a reference implementation: the splitmix64 family above is
    what the hot paths use, and ``tests/common/test_hashing.py`` checks
    that both are uniform over sketch-sized index spaces.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed & 0xFFFFFFFF

    @staticmethod
    def _mix(a: int, b: int, c: int) -> tuple[int, int, int]:
        M = 0xFFFFFFFF
        a = (a - b - c) & M
        a ^= c >> 13
        b = (b - c - a) & M
        b ^= (a << 8) & M
        c = (c - a - b) & M
        c ^= b >> 13
        a = (a - b - c) & M
        a ^= c >> 12
        b = (b - c - a) & M
        b ^= (a << 16) & M
        c = (c - a - b) & M
        c ^= b >> 5
        a = (a - b - c) & M
        a ^= c >> 3
        b = (b - c - a) & M
        b ^= (a << 10) & M
        c = (c - a - b) & M
        c ^= b >> 15
        return a, b, c

    def hash(self, key: int | bytes | str) -> int:
        """32-bit lookup2 hash of ``key``."""
        if isinstance(key, (int, np.integer)):
            data = int(key).to_bytes(8, "little", signed=False)
        elif isinstance(key, str):
            data = key.encode("utf-8")
        else:
            data = bytes(key)
        length = len(data)
        a = b = 0x9E3779B9
        c = self.seed
        i = 0
        # body: 12-byte blocks
        while length - i >= 12:
            a = (a + int.from_bytes(data[i : i + 4], "little")) & 0xFFFFFFFF
            b = (b + int.from_bytes(data[i + 4 : i + 8], "little")) & 0xFFFFFFFF
            c = (c + int.from_bytes(data[i + 8 : i + 12], "little")) & 0xFFFFFFFF
            a, b, c = self._mix(a, b, c)
            i += 12
        # tail
        c = (c + length) & 0xFFFFFFFF
        tail = data[i:]
        pad = tail + b"\x00" * (11 - len(tail))
        a = (a + int.from_bytes(pad[0:4], "little")) & 0xFFFFFFFF
        b = (b + int.from_bytes(pad[4:8], "little")) & 0xFFFFFFFF
        # the original adds tail bytes 8..10 shifted into the top of c
        c = (c + (int.from_bytes(pad[8:11], "little") << 8)) & 0xFFFFFFFF
        a, b, c = self._mix(a, b, c)
        return c

    def __call__(self, key: int | bytes | str) -> int:
        return self.hash(key)
