"""Shared substrate: hashing, validation and structural types."""

from repro.common.hashing import (
    BobHash,
    HashFamily,
    canonical_key,
    canonical_keys,
    fingerprints,
    leading_zeros_32,
    splitmix64,
)
from repro.common.types import (
    CardinalitySketch,
    FrequencySketch,
    MembershipSketch,
    SimilaritySketch,
    SlidingSketch,
)
from repro.common.validation import (
    as_key_array,
    require_in_range,
    require_non_negative_int,
    require_positive_float,
    require_positive_int,
)

__all__ = [
    "BobHash",
    "HashFamily",
    "canonical_key",
    "canonical_keys",
    "fingerprints",
    "leading_zeros_32",
    "splitmix64",
    "SlidingSketch",
    "MembershipSketch",
    "CardinalitySketch",
    "FrequencySketch",
    "SimilaritySketch",
    "as_key_array",
    "require_in_range",
    "require_non_negative_int",
    "require_positive_float",
    "require_positive_int",
]
