"""Shared structural types for the repository.

Two protocols describe what the harness and the metrics code rely on:
every sliding-window structure is a :class:`SlidingSketch` (insert keys
tagged with arrival order, report its memory budget), and task-specific
query mixins narrow what a structure can answer.  The protocols are
``runtime_checkable`` so tests can assert conformance.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

__all__ = [
    "SlidingSketch",
    "MembershipSketch",
    "CardinalitySketch",
    "FrequencySketch",
    "SimilaritySketch",
]


@runtime_checkable
class SlidingSketch(Protocol):
    """Anything that ingests a stream and accounts for its memory."""

    @property
    def memory_bytes(self) -> int:
        """Memory budget occupied by the structure, in bytes."""
        ...

    def insert(self, key: int) -> None:
        """Insert one item; arrival time is the running item count."""
        ...

    def insert_many(self, keys: np.ndarray) -> None:
        """Insert a batch of items in arrival order."""
        ...


@runtime_checkable
class MembershipSketch(Protocol):
    """Answers: did ``key`` appear within the sliding window?"""

    def contains(self, key: int) -> bool: ...


@runtime_checkable
class CardinalitySketch(Protocol):
    """Estimates the number of distinct keys in the sliding window."""

    def cardinality(self) -> float: ...


@runtime_checkable
class FrequencySketch(Protocol):
    """Estimates per-key frequency within the sliding window."""

    def frequency(self, key: int) -> float: ...


@runtime_checkable
class SimilaritySketch(Protocol):
    """Estimates the Jaccard similarity of two windowed streams."""

    def similarity(self) -> float: ...
