"""Argument-validation helpers shared across the package.

Sketch constructors take a handful of integer/float parameters whose
silent misuse (zero-size arrays, negative windows, alpha <= 0) produces
confusing downstream failures; these helpers make the failure happen at
construction time with a message naming the offending parameter.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "require_positive_int",
    "require_non_negative_int",
    "require_positive_float",
    "require_in_range",
    "as_key_array",
]


def require_positive_int(name: str, value) -> int:
    """Validate that ``value`` is an integer >= 1 and return it as int."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    v = int(value)
    if v < 1:
        raise ValueError(f"{name} must be >= 1, got {v}")
    return v


def require_non_negative_int(name: str, value) -> int:
    """Validate that ``value`` is an integer >= 0 and return it as int."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    v = int(value)
    if v < 0:
        raise ValueError(f"{name} must be >= 0, got {v}")
    return v


def require_positive_float(name: str, value) -> float:
    """Validate that ``value`` is a finite number > 0 and return a float."""
    try:
        v = float(value)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be a number, got {type(value).__name__}") from exc
    if not np.isfinite(v) or v <= 0:
        raise ValueError(f"{name} must be a finite positive number, got {value}")
    return v


def require_in_range(name: str, value, low: float, high: float, *, inclusive: bool = True) -> float:
    """Validate ``low <= value <= high`` (or strict) and return a float."""
    v = float(value)
    ok = (low <= v <= high) if inclusive else (low < v < high)
    if not ok:
        bracket = "[]" if inclusive else "()"
        raise ValueError(
            f"{name} must be in {bracket[0]}{low}, {high}{bracket[1]}, got {value}"
        )
    return v


def as_key_array(keys) -> np.ndarray:
    """Coerce a sequence of integer keys to a 1-D ``uint64`` array."""
    arr = np.asarray(keys)
    if arr.dtype.kind not in "iu":
        raise TypeError(f"keys must be integers, got dtype {arr.dtype}")
    if arr.ndim != 1:
        arr = arr.reshape(-1)
    return arr.astype(np.uint64, copy=False)
