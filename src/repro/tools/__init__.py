"""Command-line utilities: dataset generation, sketch ops, inspection."""
