"""repro.tools — operational CLI around the library.

Sub-commands::

    generate   synthesize a trace to a .npy file
        python -m repro.tools generate caida --items 1000000 --out trace.npy
    build      stream a trace into a sketch and save it
        python -m repro.tools build bf --window 65536 --memory 131072 \\
            --trace trace.npy --out bf.npz
    query      load a sketch archive and answer a query
        python -m repro.tools query bf.npz --contains 12345
        python -m repro.tools query bm.npz --cardinality
    inspect    summarise a sketch archive
        python -m repro.tools inspect bf.npz
    merge      union-merge same-config sketch archives
        python -m repro.tools merge a.npz b.npz --out all.npz
    wal        inspect / verify a durable ingestion log
        python -m repro.tools wal inspect /var/lib/engine/wal
        python -m repro.tools wal verify /var/lib/engine/wal \\
            --checkpoints /var/lib/engine/ckpt
    slo        burn-rate alert states from a running exporter
        python -m repro.tools slo status http://127.0.0.1:9464
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.core.registry import GENERIC_KIND, get_descriptor, registered_kinds
import repro.obs.windows  # noqa: F401  (registers the "wq" quantile kind)
from repro.datasets import caida_like, campus_like, distinct_stream, webpage_like
from repro.core.merge import merge_sketches
from repro.persist import load_sketch, save_sketch

_GENERATORS = {
    "caida": caida_like,
    "campus": campus_like,
    "webpage": webpage_like,
    "distinct": lambda n_items, n_distinct=None, seed=0: distinct_stream(
        n_items, seed=seed
    ),
}


def _buildable_kinds() -> list[str]:
    """Registered kinds the one-trace ``build`` command can size.

    The generic lifting needs a CsmSpec and two-stream sketches need two
    traces, so neither fits this command's shape; everything else —
    including user-registered algorithms — is offered automatically.
    """
    return [
        kind
        for kind in registered_kinds()
        if kind != GENERIC_KIND and not get_descriptor(kind).two_stream
    ]


def _cmd_generate(args) -> int:
    gen = _GENERATORS[args.kind]
    if args.kind == "distinct":
        trace = gen(args.items, seed=args.seed)
    else:
        distinct = args.distinct or max(1024, args.items // 50)
        trace = gen(args.items, distinct, seed=args.seed)
    np.save(args.out, trace.items)
    print(
        f"wrote {trace.num_items} items "
        f"({len(np.unique(trace.items))} distinct) to {args.out}"
    )
    return 0


def _cmd_build(args) -> int:
    sketch = get_descriptor(args.sketch).from_memory(
        args.window, args.memory, seed=args.seed
    )
    trace = np.load(args.trace)
    chunk = max(1, args.window // 2)
    for lo in range(0, trace.size, chunk):
        sketch.insert_many(trace[lo : lo + chunk])
    save_sketch(sketch, args.out)
    print(
        f"built {type(sketch).__name__} over {trace.size} items "
        f"({sketch.memory_bytes} B) -> {args.out}"
    )
    return 0


def _cmd_query(args) -> int:
    sketch = load_sketch(args.archive)
    if args.contains is not None:
        if not hasattr(sketch, "contains"):
            print("sketch does not answer membership", file=sys.stderr)
            return 2
        print(json.dumps({"contains": bool(sketch.contains(args.contains))}))
    elif args.frequency is not None:
        if not hasattr(sketch, "frequency"):
            print("sketch does not answer frequency", file=sys.stderr)
            return 2
        print(json.dumps({"frequency": float(sketch.frequency(args.frequency))}))
    elif args.cardinality:
        if not hasattr(sketch, "cardinality"):
            print("sketch does not answer cardinality", file=sys.stderr)
            return 2
        print(json.dumps({"cardinality": float(sketch.cardinality())}))
    elif args.quantile is not None:
        if not hasattr(sketch, "quantile"):
            print("sketch does not answer quantiles", file=sys.stderr)
            return 2
        print(json.dumps({"quantile": float(sketch.quantile(args.quantile))}))
    else:
        print(
            "nothing to query; pass --contains/--frequency/--cardinality"
            "/--quantile",
            file=sys.stderr,
        )
        return 2
    return 0


def _cmd_inspect(args) -> int:
    with np.load(args.archive) as data:
        meta = json.loads(bytes(data["__meta__"]).decode("utf-8"))
        sizes = {k: int(np.asarray(data[k]).nbytes) for k in data.files if k != "__meta__"}
    info = {
        "kind": meta["kind"],
        "frame": meta["frame"],
        "params": meta["params"],
        "clock": meta.get("t", meta.get("counts")),
        "stored_arrays": sizes,
        "archive_bytes": Path(args.archive).stat().st_size,
    }
    print(json.dumps(info, indent=2))
    return 0


def _cmd_merge(args) -> int:
    sketches = [load_sketch(p) for p in args.archives]
    merged = sketches[0]
    for other in sketches[1:]:
        merged = merge_sketches(merged, other, t=args.at)
    save_sketch(merged, args.out)
    print(
        f"merged {len(sketches)} x {type(merged).__name__} "
        f"at t={merged.t if hasattr(merged, 't') else merged.counts} -> {args.out}"
    )
    return 0


def _cmd_wal_inspect(args) -> int:
    from repro.service.wal import inspect_wal

    print(json.dumps(inspect_wal(args.directory), indent=2))
    return 0


def _cmd_wal_verify(args) -> int:
    """Exit 0 only when the log (and optionally every complete
    checkpoint) passes affirmative checksum verification."""
    from repro.service.errors import (
        CheckpointCorruptionError,
        WalCorruptionError,
    )
    from repro.service.wal import verify_wal

    rc = 0
    report: dict = {}
    try:
        report["wal"] = verify_wal(args.directory)
    except WalCorruptionError as exc:
        report["wal"] = {"error": str(exc)}
        rc = 1
    if args.checkpoints is not None:
        from repro.service.checkpoint import verify_checkpoint

        report["checkpoints"] = []
        root = Path(args.checkpoints)
        entries = sorted(
            p for p in root.iterdir()
            if p.is_dir() and p.name.startswith("ckpt-")
        ) if root.is_dir() else []
        for path in entries:
            entry = {"path": str(path), "status": "ok"}
            try:
                meta = verify_checkpoint(path)
                entry["seq"] = meta.get("seq")
                entry["wal_position"] = meta.get("wal", {}).get("position")
            except CheckpointCorruptionError as exc:
                entry["status"] = "corrupt"
                entry["error"] = str(exc)
                rc = 1
            report["checkpoints"].append(entry)
    print(json.dumps(report, indent=2))
    if rc:
        print("verification FAILED", file=sys.stderr)
    return rc


def _cmd_slo_status(args) -> int:
    """Fetch ``/alertz`` from a running exporter and summarise it.

    Exit codes: 0 when nothing is firing (including exporters without
    an SLO engine), 1 when at least one alert is firing — so the
    command drops straight into scripts and CI gates.
    """
    import urllib.error
    import urllib.request

    url = args.url.rstrip("/") + "/alertz"
    try:
        with urllib.request.urlopen(url, timeout=args.timeout) as resp:
            payload = json.loads(resp.read().decode("utf-8"))
    except (urllib.error.URLError, OSError, ValueError) as exc:
        print(f"cannot read {url}: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(payload, indent=2))
    if not payload.get("enabled", False):
        print("no SLO engine attached to this exporter", file=sys.stderr)
        return 0
    firing = payload.get("firing", [])
    if firing:
        names = ", ".join(
            f"{a['slo']}/{a['severity']}" for a in firing
        )
        print(f"FIRING: {names}", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.tools", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="synthesize a trace")
    g.add_argument("kind", choices=sorted(_GENERATORS))
    g.add_argument("--items", type=int, required=True)
    g.add_argument("--distinct", type=int, default=None)
    g.add_argument("--seed", type=int, default=0)
    g.add_argument("--out", required=True)
    g.set_defaults(fn=_cmd_generate)

    b = sub.add_parser("build", help="stream a trace into a sketch")
    b.add_argument("sketch", choices=_buildable_kinds())
    b.add_argument("--window", type=int, required=True)
    b.add_argument("--memory", type=int, required=True, help="budget in bytes")
    b.add_argument("--trace", required=True)
    b.add_argument("--seed", type=int, default=1)
    b.add_argument("--out", required=True)
    b.set_defaults(fn=_cmd_build)

    q = sub.add_parser("query", help="query a saved sketch")
    q.add_argument("archive")
    q.add_argument("--contains", type=int, default=None)
    q.add_argument("--frequency", type=int, default=None)
    q.add_argument("--cardinality", action="store_true")
    q.add_argument(
        "--quantile",
        type=float,
        default=None,
        help="windowed quantile in [0, 1] (wq archives)",
    )
    q.set_defaults(fn=_cmd_query)

    i = sub.add_parser("inspect", help="summarise a sketch archive")
    i.add_argument("archive")
    i.set_defaults(fn=_cmd_inspect)

    m = sub.add_parser("merge", help="union-merge sketch archives")
    m.add_argument("archives", nargs="+", help="two or more .npz archives")
    m.add_argument("--out", required=True)
    m.add_argument("--at", type=int, default=None, help="common query time")
    m.set_defaults(fn=_cmd_merge)

    w = sub.add_parser("wal", help="inspect / verify a write-ahead log")
    wsub = w.add_subparsers(dest="wal_command", required=True)
    wi = wsub.add_parser("inspect", help="per-segment record counts + status")
    wi.add_argument("directory")
    wi.set_defaults(fn=_cmd_wal_inspect)
    wv = wsub.add_parser(
        "verify", help="checksum-verify the log (exit 1 on corruption)"
    )
    wv.add_argument("directory")
    wv.add_argument(
        "--checkpoints",
        default=None,
        help="also checksum-verify every checkpoint under this directory",
    )
    wv.set_defaults(fn=_cmd_wal_verify)

    s = sub.add_parser("slo", help="SLO / burn-rate alert tooling")
    ssub = s.add_subparsers(dest="slo_command", required=True)
    st = ssub.add_parser(
        "status", help="alert states from /alertz (exit 1 when firing)"
    )
    st.add_argument("url", help="exporter base URL, e.g. http://127.0.0.1:9464")
    st.add_argument("--timeout", type=float, default=5.0)
    st.set_defaults(fn=_cmd_slo_status)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
