"""Experiment harness: one driver per paper table/figure."""

from repro.harness.builders import (
    build_cardinality_bitmap,
    build_cardinality_hll,
    build_frequency,
    build_membership,
    build_similarity,
)
from repro.harness.common import DEFAULT_SCALE, Scale, absent_keys
from repro.harness.experiments_accuracy import (
    FIG5_TASKS,
    FIG6_MEMORIES,
    FIG9_MEMORIES,
    fig5_stability,
    fig6_window_sizes,
    fig7a_bf_alpha,
    fig7b_bm_alpha,
    fig8a_fpr_vs_item_age,
    fig8b_fpr_vs_num_hashes,
    fig9_accuracy,
)
from repro.harness.experiments_system import (
    PAPER_TABLE2,
    PAPER_TABLE3,
    fig10_throughput,
    fig11_throughput,
    table2_resources,
    table3_frequency,
)
from repro.harness.report import FigureResult, Series, render_table
from repro.harness.runners import (
    run_cardinality,
    run_frequency,
    run_membership,
    run_similarity,
)

__all__ = [
    "DEFAULT_SCALE",
    "Scale",
    "absent_keys",
    "FIG5_TASKS",
    "FIG6_MEMORIES",
    "FIG9_MEMORIES",
    "fig5_stability",
    "fig6_window_sizes",
    "fig7a_bf_alpha",
    "fig7b_bm_alpha",
    "fig8a_fpr_vs_item_age",
    "fig8b_fpr_vs_num_hashes",
    "fig9_accuracy",
    "fig10_throughput",
    "fig11_throughput",
    "table2_resources",
    "table3_frequency",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "FigureResult",
    "Series",
    "render_table",
    "run_cardinality",
    "run_frequency",
    "run_membership",
    "run_similarity",
    "build_membership",
    "build_cardinality_bitmap",
    "build_cardinality_hll",
    "build_frequency",
    "build_similarity",
]
