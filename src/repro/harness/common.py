"""Shared experiment plumbing: scales, checkpoint loops, query pools.

The paper runs N = 2^16 (2^21 for HLL) over ~30M-item traces; that is
hours in Python, so every driver takes a :class:`Scale` with reduced
defaults — chosen to keep each structure at the same *load* (memory
per window-cardinality) as the paper — and benchmarks can pass
``Scale.paper()`` to run full size.  Memory budgets given in "paper
bytes" are shrunk by the window ratio so the curves live in the same
regime.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets import caida_like
from repro.exact import ExactWindow

__all__ = ["Scale", "stream_checkpoints", "absent_keys", "DEFAULT_SCALE"]


@dataclass(frozen=True)
class Scale:
    """How large an experiment runs.

    Attributes:
        window: sliding-window size N.
        n_windows: stream length in windows (after warm-up).
        warm_windows: windows fed before any measurement (§7.1: "feed
            enough items until the performance is stable").
        trials: independent repetitions (seeds) averaged together.
    """

    window: int = 1 << 12
    n_windows: int = 4
    warm_windows: int = 2
    trials: int = 1

    @classmethod
    def paper(cls) -> "Scale":
        """The paper's full-size setting (slow in Python)."""
        return cls(window=1 << 16, n_windows=6, warm_windows=2, trials=1)

    @property
    def paper_window(self) -> int:
        return 1 << 16

    def memory(self, paper_bytes: float) -> int:
        """Scale a paper memory budget by the window ratio (min 64 B)."""
        scaled = paper_bytes * self.window / self.paper_window
        return max(24, int(scaled))

    @property
    def stream_items(self) -> int:
        return self.window * (self.warm_windows + self.n_windows)


DEFAULT_SCALE = Scale()


def stream_checkpoints(scale: Scale, *, per_window: int = 2):
    """Yield (lo, hi, is_measured) chunk bounds over the stream.

    Chunks are ``window / per_window`` items; measurement starts after
    the warm-up windows.
    """
    step = max(1, scale.window // per_window)
    warm = scale.warm_windows * scale.window
    total = scale.stream_items
    for lo in range(0, total, step):
        hi = min(lo + step, total)
        yield lo, hi, hi > warm


def absent_keys(n: int, seed: int = 999) -> np.ndarray:
    """Keys guaranteed (w.h.p.) outside any generated trace's key space.

    Trace keys live in [0, 2^48); these sit in a disjoint high range.
    """
    rng = np.random.default_rng(seed)
    base = np.uint64(1) << np.uint64(60)
    return base + rng.integers(0, 1 << 32, size=n, dtype=np.uint64)


def window_sample(oracle: ExactWindow, k: int, seed: int = 0) -> np.ndarray:
    """Up to ``k`` distinct keys currently in the window (for ARE)."""
    keys = oracle.distinct_keys()
    if keys.size <= k:
        return keys
    rng = np.random.default_rng(seed)
    return rng.choice(keys, size=k, replace=False)
