"""ASCII charts for the figure CLI (matplotlib-free environments).

Renders a :class:`~repro.harness.report.FigureResult` as a fixed-size
character plot — enough to *see* the crossovers and decades the paper's
figures show, straight from a terminal.  Log axes are chosen the way
the paper draws each metric (FPRs on log-y, memory sweeps on log-x).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["ascii_chart"]

_MARKERS = "ox+*#@%&"


def _to_float(values) -> np.ndarray:
    out = []
    for v in values:
        try:
            out.append(float(v))
        except (TypeError, ValueError):
            out.append(float("nan"))
    return np.asarray(out, dtype=float)


def _axis(values: np.ndarray, log: bool) -> tuple[float, float]:
    finite = values[np.isfinite(values)]
    if log:
        finite = finite[finite > 0]
    if finite.size == 0:
        return 0.0, 1.0
    lo, hi = float(finite.min()), float(finite.max())
    if log:
        lo, hi = math.log10(lo), math.log10(hi)
    if hi <= lo:
        hi = lo + 1.0
    return lo, hi


def _project(v: float, lo: float, hi: float, steps: int, log: bool) -> int | None:
    if not np.isfinite(v):
        return None
    if log:
        if v <= 0:
            return None
        v = math.log10(v)
    frac = (v - lo) / (hi - lo)
    return int(round(frac * (steps - 1)))


def ascii_chart(
    result,
    *,
    width: int = 64,
    height: int = 18,
    log_x: bool | None = None,
    log_y: bool | None = None,
) -> str:
    """Render a FigureResult's series as an ASCII scatter chart.

    Axis scales default from the metric: error/FPR metrics get log-y
    when they span over a decade; numeric x gets log-x when it spans
    over a decade.  Categorical x (strings) is positioned evenly.
    """
    numeric_x = all(
        isinstance(v, (int, float, np.integer, np.floating))
        for s in result.series
        for v in s.x
    )
    xs_all = (
        _to_float([v for s in result.series for v in s.x])
        if numeric_x
        else None
    )
    ys_all = _to_float([v for s in result.series for v in s.y])

    def spans_decade(arr):
        pos = arr[np.isfinite(arr) & (arr > 0)]
        return pos.size >= 2 and pos.max() / max(pos.min(), 1e-300) > 10

    if log_y is None:
        log_y = spans_decade(ys_all)
    if log_x is None:
        log_x = bool(numeric_x and spans_decade(xs_all))

    ylo, yhi = _axis(ys_all, log_y)
    if numeric_x:
        xlo, xhi = _axis(xs_all, log_x)

    grid = [[" "] * width for _ in range(height)]
    categories: list = []
    if not numeric_x:
        for s in result.series:
            for v in s.x:
                if v not in categories:
                    categories.append(v)

    for si, s in enumerate(result.series):
        marker = _MARKERS[si % len(_MARKERS)]
        ys = _to_float(s.y)
        for i, xv in enumerate(s.x):
            if numeric_x:
                col = _project(float(xv), xlo, xhi, width, log_x)
            else:
                col = int(
                    (categories.index(xv) + 0.5) / len(categories) * (width - 1)
                )
            row = _project(ys[i], ylo, yhi, height, log_y)
            if col is None or row is None:
                continue
            grid[height - 1 - row][col] = marker

    def fmt_axis(v: float, log: bool) -> str:
        return f"{10**v:.3g}" if log else f"{v:.3g}"

    lines = [f"{result.name}: {result.title}"]
    top = fmt_axis(yhi, log_y)
    bot = fmt_axis(ylo, log_y)
    pad = max(len(top), len(bot))
    for r, rowchars in enumerate(grid):
        label = top if r == 0 else (bot if r == height - 1 else "")
        lines.append(f"{label.rjust(pad)} |{''.join(rowchars)}|")
    lines.append(" " * pad + " +" + "-" * width + "+")
    if numeric_x:
        left, right = fmt_axis(xlo, log_x), fmt_axis(xhi, log_x)
        lines.append(
            " " * pad
            + "  "
            + left
            + " " * max(1, width - len(left) - len(right))
            + right
        )
    else:
        lines.append(" " * pad + "  " + "  ".join(str(c) for c in categories))
    lines.append(
        f"x: {result.x_label}{' (log)' if log_x and numeric_x else ''}   "
        f"y: {result.y_label}{' (log)' if log_y else ''}"
    )
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {s.label}" for i, s in enumerate(result.series)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines) + "\n"
