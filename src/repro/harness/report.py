"""Result containers, table rendering and JSON export for the harness.

Every experiment driver returns a :class:`FigureResult` holding one
:class:`Series` per plotted line, so benchmarks can print the same
rows/series the paper's figures chart and EXPERIMENTS.md can quote them
verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Series", "FigureResult", "render_table", "fmt"]


def fmt(x) -> str:
    """Compact numeric formatting for table cells."""
    if x is None:
        return "--"
    if isinstance(x, str):
        return x
    if isinstance(x, (bool, np.bool_)):
        return "yes" if x else "no"
    v = float(x)
    if not np.isfinite(v):
        return "--"
    if v == 0:
        return "0"
    a = abs(v)
    if a >= 1e5 or a < 1e-3:
        return f"{v:.2e}"
    if a >= 100:
        return f"{v:.1f}"
    if a >= 1:
        return f"{v:.3g}"
    return f"{v:.4f}"


@dataclass
class Series:
    """One line of a figure: a label, x/y pairs, optional y spread."""

    label: str
    x: list
    y: list
    yerr: list | None = None

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(
                f"series {self.label!r}: x has {len(self.x)} points, "
                f"y has {len(self.y)}"
            )
        if self.yerr is not None and len(self.yerr) != len(self.y):
            raise ValueError(
                f"series {self.label!r}: yerr has {len(self.yerr)} points, "
                f"y has {len(self.y)}"
            )


@dataclass
class FigureResult:
    """All series of one paper figure/table, plus rendering."""

    name: str
    title: str
    x_label: str
    y_label: str
    series: list[Series] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def table(self) -> str:
        """Render the series as one fixed-width table (x down, series across)."""
        xs: list = []
        for s in self.series:
            for v in s.x:
                if v not in xs:
                    xs.append(v)
        headers = [self.x_label] + [s.label for s in self.series]
        rows = []
        for xv in xs:
            row = [fmt(xv)]
            for s in self.series:
                try:
                    i = s.x.index(xv)
                    cell = fmt(s.y[i])
                    if s.yerr is not None and np.isfinite(s.yerr[i]):
                        cell += f" ±{fmt(s.yerr[i])}"
                    row.append(cell)
                except ValueError:
                    row.append("--")
            rows.append(row)
        body = render_table(f"{self.name}: {self.title}  [y = {self.y_label}]", headers, rows)
        if self.notes:
            body += "".join(f"  note: {n}\n" for n in self.notes)
        return body

    def chart(self, **kwargs) -> str:
        """ASCII rendering of the figure (see harness.ascii_plot)."""
        from repro.harness.ascii_plot import ascii_chart

        return ascii_chart(self, **kwargs)

    def to_dict(self) -> dict:
        """Plain-data form for JSON export / downstream plotting."""
        def clean(v):
            if isinstance(v, (np.floating, np.integer)):
                v = float(v)
            if isinstance(v, float) and not np.isfinite(v):
                return None
            return v

        return {
            "name": self.name,
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "notes": list(self.notes),
            "series": [
                {
                    "label": s.label,
                    "x": [clean(v) for v in s.x],
                    "y": [clean(v) for v in s.y],
                    **(
                        {"yerr": [clean(v) for v in s.yerr]}
                        if s.yerr is not None
                        else {}
                    ),
                }
                for s in self.series
            ],
        }

    def to_json(self, **kwargs) -> str:
        """JSON rendering (NaN/inf become null)."""
        import json

        kwargs.setdefault("indent", 2)
        return json.dumps(self.to_dict(), **kwargs)


def render_table(title: str, headers: list[str], rows: list[list[str]]) -> str:
    """Fixed-width ASCII table."""
    cols = len(headers)
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != cols:
            raise ValueError(f"row has {len(row)} cells, expected {cols}: {row}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    sep = "-+-".join("-" * w for w in widths)
    out = [title]
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in rows:
        out.append(" | ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out) + "\n"
