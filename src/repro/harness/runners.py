"""Task runners: drive a set of structures over a stream, checkpointing.

Each runner feeds every structure (and the exact oracle) the same
chunked stream and records the task's §7.1 metric at every half-window
checkpoint after warm-up.  Structures that raise at construction time
(e.g. SWAMP below its memory floor) are the *caller's* problem — the
runners only see built objects.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exact import ExactJaccard, ExactWindow
from repro.harness.common import Scale, absent_keys, stream_checkpoints, window_sample
from repro.metrics import average_relative_error, false_positive_rate, relative_error

__all__ = [
    "run_membership",
    "run_cardinality",
    "run_frequency",
    "run_similarity",
]


def run_membership(
    sketches: dict[str, object],
    stream: np.ndarray,
    scale: Scale,
    *,
    n_queries: int = 2000,
    seed: int = 0,
) -> dict[str, list[float]]:
    """Feed the stream; record FPR on absent keys at each checkpoint."""
    oracle = ExactWindow(scale.window)
    queries = absent_keys(n_queries, seed=seed)
    out: dict[str, list[float]] = {name: [] for name in sketches}
    out["_checkpoint"] = []
    for lo, hi, measured in stream_checkpoints(scale):
        chunk = stream[lo:hi]
        oracle.insert_many(chunk)
        for sk in sketches.values():
            sk.insert_many(chunk)
        if measured:
            truth = np.zeros(queries.size, dtype=bool)  # absent by design
            out["_checkpoint"].append(hi / scale.window)
            for name, sk in sketches.items():
                pred = sk.contains_many(queries)
                out[name].append(false_positive_rate(pred, truth))
    return out


def run_cardinality(
    sketches: dict[str, object],
    stream: np.ndarray,
    scale: Scale,
) -> dict[str, list[float]]:
    """Feed the stream; record cardinality RE at each checkpoint."""
    oracle = ExactWindow(scale.window)
    out: dict[str, list[float]] = {name: [] for name in sketches}
    out["_checkpoint"] = []
    for lo, hi, measured in stream_checkpoints(scale):
        chunk = stream[lo:hi]
        oracle.insert_many(chunk)
        for sk in sketches.values():
            sk.insert_many(chunk)
        if measured:
            true_c = oracle.cardinality()
            out["_checkpoint"].append(hi / scale.window)
            for name, sk in sketches.items():
                out[name].append(relative_error(sk.cardinality(), true_c))
    return out


def run_frequency(
    sketches: dict[str, object],
    stream: np.ndarray,
    scale: Scale,
    *,
    n_queries: int = 400,
    seed: int = 0,
) -> dict[str, list[float]]:
    """Feed the stream; record frequency ARE at each checkpoint."""
    oracle = ExactWindow(scale.window)
    out: dict[str, list[float]] = {name: [] for name in sketches}
    out["_checkpoint"] = []
    for lo, hi, measured in stream_checkpoints(scale):
        chunk = stream[lo:hi]
        oracle.insert_many(chunk)
        for sk in sketches.values():
            sk.insert_many(chunk)
        if measured:
            keys = window_sample(oracle, n_queries, seed=seed)
            truth = oracle.frequency_many(keys).astype(np.float64)
            out["_checkpoint"].append(hi / scale.window)
            for name, sk in sketches.items():
                est = np.asarray(sk.frequency_many(keys), dtype=np.float64)
                out[name].append(average_relative_error(est, truth))
    return out


def run_similarity(
    sketches: dict[str, object],
    streams: tuple[np.ndarray, np.ndarray],
    scale: Scale,
) -> dict[str, list[float]]:
    """Feed paired streams; record similarity RE at each checkpoint."""
    oracle = ExactJaccard(scale.window)
    out: dict[str, list[float]] = {name: [] for name in sketches}
    out["_checkpoint"] = []
    s0, s1 = streams
    for lo, hi, measured in stream_checkpoints(scale):
        for side, s in ((0, s0), (1, s1)):
            chunk = s[lo:hi]
            oracle.insert_many(side, chunk)
            for sk in sketches.values():
                sk.insert_many(side, chunk)
        if measured:
            true_s = oracle.similarity()
            out["_checkpoint"].append(hi / scale.window)
            for name, sk in sketches.items():
                out[name].append(relative_error(sk.similarity(), true_s))
    return out
