"""CLI: regenerate any paper table/figure.

Usage::

    python -m repro.harness list
    python -m repro.harness fig9a [--full] [--window 4096]
    python -m repro.harness all [--full]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness import (
    Scale,
    fig5_stability,
    fig6_window_sizes,
    fig7a_bf_alpha,
    fig7b_bm_alpha,
    fig8a_fpr_vs_item_age,
    fig8b_fpr_vs_num_hashes,
    fig9_accuracy,
    fig10_throughput,
    fig11_throughput,
    table2_resources,
    table3_frequency,
)

_TASK_BY_LETTER = dict(zip("abcde", ["bm", "hll", "cm", "bf", "mh"]))


def _registry():
    """target -> callable(scale) returning a FigureResult or a string."""
    reg = {}
    for letter, task in _TASK_BY_LETTER.items():
        reg[f"fig5{letter}"] = lambda s, t=task: fig5_stability(t, s)
        reg[f"fig6{letter}"] = lambda s, t=task: fig6_window_sizes(t, s)
        reg[f"fig9{letter}"] = lambda s, p=letter: fig9_accuracy(p, s)
    reg["fig7a"] = fig7a_bf_alpha
    reg["fig7b"] = fig7b_bm_alpha
    reg["fig8a"] = fig8a_fpr_vs_item_age
    reg["fig8b"] = fig8b_fpr_vs_num_hashes
    reg["fig10a"] = lambda s: fig10_throughput("a", s)
    reg["fig10b"] = lambda s: fig10_throughput("b", s)
    reg["fig11"] = fig11_throughput
    reg["table2"] = lambda s: table2_resources()
    reg["table3"] = lambda s: table3_frequency()
    return reg


def main(argv: list[str] | None = None) -> int:
    reg = _registry()
    parser = argparse.ArgumentParser(prog="repro.harness", description=__doc__)
    parser.add_argument("target", help="'list', 'all', or one of: " + " ".join(sorted(reg)))
    parser.add_argument("--full", action="store_true", help="paper-scale run (slow)")
    parser.add_argument("--window", type=int, default=None, help="override window size")
    parser.add_argument("--chart", action="store_true", help="also draw ASCII charts")
    parser.add_argument("--json", metavar="DIR", default=None,
                        help="also write <target>.json files into DIR")
    args = parser.parse_args(argv)

    if args.target == "list":
        print("\n".join(sorted(reg)))
        return 0

    scale = Scale.paper() if args.full else Scale()
    if args.window is not None:
        scale = Scale(
            window=args.window,
            n_windows=scale.n_windows,
            warm_windows=scale.warm_windows,
            trials=scale.trials,
        )

    targets = sorted(reg) if args.target == "all" else [args.target]
    for t in targets:
        if t not in reg:
            print(f"unknown target {t!r}; try 'list'", file=sys.stderr)
            return 2
        start = time.perf_counter()
        out = reg[t](scale)
        if isinstance(out, str):
            print(out)
        else:
            print(out.table())
            if args.chart:
                print(out.chart())
            if args.json:
                from pathlib import Path

                d = Path(args.json)
                d.mkdir(parents=True, exist_ok=True)
                (d / f"{t}.json").write_text(out.to_json())
        print(f"[{t} took {time.perf_counter() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
