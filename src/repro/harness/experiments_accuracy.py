"""Drivers for the accuracy figures: Fig. 5, 6, 7, 8 and 9.

Each ``fig*`` function runs the experiment at a :class:`Scale` (reduced
by default, ``Scale.paper()`` for full size) and returns a
:class:`~repro.harness.report.FigureResult` whose series mirror the
lines of the paper's plot.  Memory budgets are given in *paper* bytes
and shrunk by the window ratio, so every structure operates at the
paper's load factor.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import optimal_alpha
from repro.datasets import caida_like, distinct_stream, relevant_pair
from repro.harness.builders import (
    build_cardinality_bitmap,
    build_cardinality_hll,
    build_frequency,
    build_membership,
    build_similarity,
)
from repro.harness.common import Scale, DEFAULT_SCALE
from repro.harness.report import FigureResult, Series
from repro.harness.runners import (
    run_cardinality,
    run_frequency,
    run_membership,
    run_similarity,
)

__all__ = [
    "fig5_stability",
    "fig6_window_sizes",
    "fig7a_bf_alpha",
    "fig7b_bm_alpha",
    "fig8a_fpr_vs_item_age",
    "fig8b_fpr_vs_num_hashes",
    "fig9_accuracy",
    "FIG5_TASKS",
    "FIG9_MEMORIES",
]

_KB = 1024
_MB = 1024 * 1024

#: paper memory sizes per Fig. 5 panel
FIG5_TASKS = {
    "bm": [512, 1 * _KB, 2 * _KB],
    "hll": [256, 1 * _KB, 8 * _KB],
    "cm": [1 * _MB, 2 * _MB, 4 * _MB],
    "bf": [32 * _KB, 128 * _KB, 512 * _KB],
    "mh": [512, 1 * _KB, 2 * _KB],
}

#: paper memory sweeps per Fig. 9 panel
FIG9_MEMORIES = {
    "a": [512, 1 * _KB, 2 * _KB, 4 * _KB, 8 * _KB, 100 * _KB],
    "b": [1 * _KB, 2 * _KB, 4 * _KB, 8 * _KB, 16 * _KB, 32 * _KB],
    "c": [int(0.5 * _MB), 1 * _MB, int(1.5 * _MB), 2 * _MB, int(2.5 * _MB)],
    "d": [32 * _KB, 128 * _KB, 256 * _KB, 384 * _KB, 512 * _KB],
    "e": [1 * _KB, 2 * _KB, 3 * _KB, 4 * _KB],
}


def _trace(scale: Scale, seed: int) -> np.ndarray:
    """CAIDA-like items matched to the stream length."""
    n = scale.stream_items
    # universe ~2N keeps the window-cardinality ratio C/N in the
    # paper's CAIDA regime (~0.3-0.5) at any scale
    distinct = max(1024, 2 * scale.window)
    return caida_like(n, distinct, seed=seed).items


def _hll_trace(scale: Scale, seed: int) -> np.ndarray:
    """High-cardinality trace for the HLL comparison (Fig. 9b).

    §7.1 sets the HLL window to 2^21 "because HyperLogLog is usually
    used to estimate massive cardinality": the operating regime is
    C >> registers.  A near-uniform draw from a 4N universe keeps the
    window cardinality near 0.9 N, matching the paper's C/m range.
    """
    from repro.datasets import BoundedZipf

    z = BoundedZipf(4 * scale.window, 0.3, seed=seed)
    return z.sample(scale.stream_items)


def _pair(scale: Scale, seed: int):
    n = scale.stream_items
    a, b = relevant_pair(n, max(2000, n // 10), overlap=0.5, seed=seed)
    return a.items, b.items


def _avg(values: list[float]) -> float:
    return float(np.mean(values)) if values else float("nan")


def _budget(scale: Scale, task_or_panel: str, mem: int) -> int:
    """Scale a paper budget — except for HLL/MinHash.

    Bitmap/BF/CM sizes track the window cardinality, so their paper
    budgets shrink with the window ratio.  HLL registers and MinHash
    counters are precision-driven (error ~ 1/sqrt(M), independent of N),
    so those panels keep the paper's absolute budgets.
    """
    if task_or_panel in ("hll", "mh", "b", "e"):
        return int(mem)
    return scale.memory(mem)


# ---------------------------------------------------------------- Fig. 5


def fig5_stability(
    task: str,
    scale: Scale = DEFAULT_SCALE,
    *,
    frame: str = "hardware",
    seed: int = 50,
) -> FigureResult:
    """Fig. 5: error vs time (in windows) for three memory sizes."""
    if task not in FIG5_TASKS:
        raise ValueError(f"task must be one of {sorted(FIG5_TASKS)}, got {task!r}")
    memories = FIG5_TASKS[task]
    result = FigureResult(
        name=f"Figure 5{'abcde'['bm hll cm bf mh'.split().index(task)]}",
        title=f"stability of SHE-{task.upper()} as the window slides",
        x_label="time (windows)",
        y_label={"bm": "RE", "hll": "RE", "cm": "ARE", "bf": "FPR", "mh": "RE"}[task],
    )
    build = {
        "bm": lambda m: build_cardinality_bitmap(scale.window, m, include_baselines=False, frame=frame),
        "hll": lambda m: build_cardinality_hll(scale.window, m, include_baselines=False, frame=frame),
        "cm": lambda m: build_frequency(scale.window, m, include_baselines=False, frame=frame),
        "bf": lambda m: build_membership(scale.window, m, include_baselines=False, frame=frame),
        "mh": lambda m: build_similarity(scale.window, m, include_baselines=False, frame=frame),
    }[task]
    runner = {
        "bm": run_cardinality,
        "hll": run_cardinality,
        "cm": run_frequency,
        "bf": run_membership,
        "mh": run_similarity,
    }[task]

    if task == "mh":
        streams = _pair(scale, seed)
    elif task == "bf":
        streams = distinct_stream(scale.stream_items, seed=seed).items
    else:
        streams = _trace(scale, seed)

    for mem in memories:
        budget = _budget(scale, task, mem)
        panel = build(budget)
        she_name = next(n for n in panel if n.startswith("SHE"))
        sketch = {she_name: panel[she_name]}
        res = runner(sketch, streams, scale)
        label = f"{mem / _KB:g} KB" if mem < _MB else f"{mem / _MB:g} MB"
        result.series.append(Series(label, res["_checkpoint"], res[she_name]))
    result.notes.append(
        f"window N={scale.window}, budgets scaled x{scale.window / scale.paper_window:g} from paper sizes"
    )
    return result


# ---------------------------------------------------------------- Fig. 6


#: paper memory sizes per Fig. 6 panel (held FIXED while the window varies)
FIG6_MEMORIES = {
    "bm": [2 * _KB, 4 * _KB, 8 * _KB],
    "hll": [1 * _KB, 4 * _KB, 16 * _KB],
    "cm": [1 * _MB, 2 * _MB, 4 * _MB],
    "bf": [64 * _KB, 256 * _KB, 1 * _MB],
    "mh": [1 * _KB, 2 * _KB, 4 * _KB],
}


def fig6_window_sizes(
    task: str,
    scale: Scale = DEFAULT_SCALE,
    *,
    window_factors: tuple[int, ...] = (1, 4, 16),
    frame: str = "hardware",
    seed: int = 60,
) -> FigureResult:
    """Fig. 6: error vs window size at *fixed* memory budgets.

    The paper's point is adaptation: SHE's error stays near the ideal
    as N grows with the structure size held constant.  Budgets are the
    paper's Fig. 6 values scaled once by the top-level window ratio and
    then kept fixed across the window sweep.
    """
    if task not in FIG6_MEMORIES:
        raise ValueError(f"task must be one of {sorted(FIG6_MEMORIES)}, got {task!r}")
    memories = FIG6_MEMORIES[task]
    result = FigureResult(
        name=f"Figure 6{'abcde'['bm hll cm bf mh'.split().index(task)]}",
        title=f"SHE-{task.upper()} across window sizes (fixed memory)",
        x_label="window (items)",
        y_label={"bm": "RE", "hll": "RE", "cm": "ARE", "bf": "FPR", "mh": "RE"}[task],
    )
    build = {
        "bm": lambda m, w: build_cardinality_bitmap(w, m, include_baselines=False, frame=frame),
        "hll": lambda m, w: build_cardinality_hll(w, m, include_baselines=False, frame=frame),
        "cm": lambda m, w: build_frequency(w, m, include_baselines=False, frame=frame),
        "bf": lambda m, w: build_membership(w, m, include_baselines=False, frame=frame),
        "mh": lambda m, w: build_similarity(w, m, include_baselines=False, frame=frame),
    }[task]
    runner = {
        "bm": run_cardinality,
        "hll": run_cardinality,
        "cm": run_frequency,
        "bf": run_membership,
        "mh": run_similarity,
    }[task]

    base_window = max(256, scale.window // max(window_factors))
    for mem in memories:
        budget = _budget(scale, task, mem)
        xs, ys = [], []
        for f in window_factors:
            w = base_window * f
            sub = Scale(
                window=w,
                n_windows=scale.n_windows,
                warm_windows=scale.warm_windows,
                trials=scale.trials,
            )
            if task == "mh":
                streams = _pair(sub, seed + f)
            elif task == "bf":
                streams = distinct_stream(sub.stream_items, seed=seed + f).items
            else:
                streams = _trace(sub, seed + f)
            panel = build(budget, w)
            she_name = next(n for n in panel if n.startswith("SHE"))
            res = runner({she_name: panel[she_name]}, streams, sub)
            xs.append(w)
            ys.append(_avg(res[she_name]))
        label = f"{mem / _KB:g} KB" if mem < _MB else f"{mem / _MB:g} MB"
        result.series.append(Series(label, xs, ys))
    result.notes.append("memory held fixed while the window sweeps, as in the paper")
    return result


# ---------------------------------------------------------------- Fig. 7


def fig7a_bf_alpha(
    scale: Scale = DEFAULT_SCALE,
    *,
    memories: tuple[int, ...] = (15 * _KB, 30 * _KB, 60 * _KB, 120 * _KB),
    alphas: tuple[float | str, ...] = (1.0, "optimal", 5.0),
    frame: str = "hardware",
    seed: int = 70,
) -> FigureResult:
    """Fig. 7a: SHE-BF FPR vs memory for alpha in {1, Eq.-2 optimal, 5}."""
    result = FigureResult(
        name="Figure 7a",
        title="SHE-BF FPR vs memory for several alpha",
        x_label="memory (paper KB)",
        y_label="FPR",
    )
    stream = _trace(scale, seed)
    window_card = len(np.unique(stream[-scale.window :]))
    for a in alphas:
        xs, ys = [], []
        for mem in memories:
            budget = scale.memory(mem)
            if a == "optimal":
                alpha = optimal_alpha(window_card, 8, budget * 8)
                label = "optimal"
            else:
                alpha, label = float(a), f"alpha={a:g}"
            panel = build_membership(
                scale.window, budget, alpha=alpha, include_baselines=False, frame=frame
            )
            res = run_membership({"SHE-BF": panel["SHE-BF"]}, stream, scale, seed=seed)
            xs.append(mem / _KB)
            ys.append(_avg(res["SHE-BF"]))
        result.series.append(Series(label, xs, ys))
    return result


def fig7b_bm_alpha(
    scale: Scale = DEFAULT_SCALE,
    *,
    memories: tuple[int, ...] = (512, 1 * _KB, int(1.5 * _KB), 2 * _KB),
    alphas: tuple[float, ...] = (0.1, 0.2, 0.4),
    frame: str = "hardware",
    seed: int = 71,
) -> FigureResult:
    """Fig. 7b: SHE-BM RE vs memory for alpha in {0.1, 0.2, 0.4}."""
    result = FigureResult(
        name="Figure 7b",
        title="SHE-BM RE vs memory for several alpha",
        x_label="memory (paper KB)",
        y_label="RE",
    )
    stream = _trace(scale, seed)
    for a in alphas:
        xs, ys = [], []
        for mem in memories:
            budget = scale.memory(mem)
            panel = build_cardinality_bitmap(
                scale.window, budget, alpha=a, include_baselines=False, frame=frame
            )
            res = run_cardinality({"SHE-BM": panel["SHE-BM"]}, stream, scale)
            xs.append(mem / _KB)
            ys.append(_avg(res["SHE-BM"]))
        result.series.append(Series(f"alpha={a:g}", xs, ys))
    return result


# ---------------------------------------------------------------- Fig. 8


def fig8a_fpr_vs_item_age(
    scale: Scale = DEFAULT_SCALE,
    *,
    ages: tuple[float, ...] = (1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 5.0),
    alpha: float = 3.0,
    memory_paper_bytes: int = 256 * _KB,
    trials: int = 5,
    frame: str = "hardware",
    seed: int = 80,
) -> FigureResult:
    """Fig. 8a: probability an item of a given age still reads present.

    Distinct Stream; an item's "age" is windows since its arrival.  The
    paper's relaxed window is (1 + alpha) N, so the FPR should decay
    until the age passes 1 + alpha and flatten at the hash-collision
    floor.
    """
    result = FigureResult(
        name="Figure 8a",
        title="SHE-BF FPR vs item age (Distinct Stream)",
        x_label="item age (windows)",
        y_label="FPR",
    )
    n = scale.stream_items + int(max(ages) * scale.window)
    xs, ys = [], []
    for age in ages:
        hits = 0
        total = 0
        for trial in range(trials):
            stream = distinct_stream(n, seed=seed + 17 * trial).items
            bf = build_membership(
                scale.window,
                scale.memory(memory_paper_bytes),
                alpha=alpha,
                include_baselines=False,
                frame=frame,
            )["SHE-BF"]
            bf.insert_many(stream)
            t = bf.now()
            back = int(age * scale.window)
            sample = stream[t - back : t - back + 200]
            # every sampled item is outside the window (age >= 1): any
            # "present" answer is a false positive
            hits += int(np.count_nonzero(bf.contains_many(sample)))
            total += sample.size
        xs.append(age)
        ys.append(hits / total if total else float("nan"))
    result.series.append(Series(f"alpha={alpha:g}", xs, ys))
    return result


def fig8b_fpr_vs_num_hashes(
    scale: Scale = DEFAULT_SCALE,
    *,
    hash_counts: tuple[int, ...] = (2, 4, 8, 16, 24, 30),
    memory_paper_bytes: int = 64 * _KB,
    frame: str = "hardware",
    seed: int = 81,
) -> FigureResult:
    """Fig. 8b: FPR vs #hashes — Eq.-2 optimal alpha vs fixed alpha=3."""
    result = FigureResult(
        name="Figure 8b",
        title="SHE-BF FPR vs number of hash functions (Distinct Stream)",
        x_label="# hash functions",
        y_label="FPR",
    )
    stream = distinct_stream(scale.stream_items, seed=seed).items
    budget = scale.memory(memory_paper_bytes)
    for mode in ("fixed", "optimal"):
        xs, ys = [], []
        for k in hash_counts:
            alpha = 3.0 if mode == "fixed" else optimal_alpha(scale.window, k, budget * 8)
            panel = build_membership(
                scale.window,
                budget,
                alpha=alpha,
                num_hashes=k,
                include_baselines=False,
                frame=frame,
            )
            res = run_membership({"SHE-BF": panel["SHE-BF"]}, stream, scale, seed=seed)
            xs.append(k)
            ys.append(_avg(res["SHE-BF"]))
        result.series.append(Series("alpha=3" if mode == "fixed" else "optimal alpha", xs, ys))
    return result


# ---------------------------------------------------------------- Fig. 9


def fig9_accuracy(
    panel: str,
    scale: Scale = DEFAULT_SCALE,
    *,
    memories: list[int] | None = None,
    frame: str = "hardware",
    seed: int = 90,
) -> FigureResult:
    """Fig. 9: memory sweep of SHE vs competitors vs Ideal, one panel.

    Panels: 'a' cardinality/bitmap, 'b' cardinality/HLL, 'c' frequency,
    'd' membership, 'e' similarity.
    """
    if panel not in FIG9_MEMORIES:
        raise ValueError(f"panel must be one of {sorted(FIG9_MEMORIES)}, got {panel!r}")
    memories = memories if memories is not None else FIG9_MEMORIES[panel]
    titles = {
        "a": ("cardinality (Bitmap)", "RE"),
        "b": ("cardinality (HLL)", "RE"),
        "c": ("frequency", "ARE"),
        "d": ("membership", "FPR"),
        "e": ("similarity", "RE"),
    }
    title, metric = titles[panel]
    result = FigureResult(
        name=f"Figure 9{panel}",
        title=f"accuracy comparison: {title}",
        x_label="memory (paper KB)",
        y_label=metric,
    )
    build = {
        "a": build_cardinality_bitmap,
        "b": build_cardinality_hll,
        "c": build_frequency,
        "d": build_membership,
        "e": build_similarity,
    }[panel]
    runner = {
        "a": run_cardinality,
        "b": run_cardinality,
        "c": run_frequency,
        "d": run_membership,
        "e": run_similarity,
    }[panel]

    if panel == "b":
        # HLL panel: a larger window + high-cardinality trace keep the
        # paper's C >> m regime; budgets scale against the 2^21 window
        scale = Scale(
            window=scale.window * 8,
            n_windows=scale.n_windows,
            warm_windows=scale.warm_windows,
            trials=scale.trials,
        )

    def stream_for(trial_seed: int):
        if panel == "b":
            return _hll_trace(scale, trial_seed)
        if panel == "e":
            return _pair(scale, trial_seed)
        return _trace(scale, trial_seed)

    collected: dict[str, Series] = {}
    for mem in memories:
        if panel == "b":
            budget = max(16, int(mem * scale.window / (1 << 21)))
        else:
            budget = _budget(scale, panel, mem)
        # scale.trials independent (stream, sketch-seed) repetitions
        merged: dict[str, list[float]] = {}
        per_trial: dict[str, list[float]] = {}
        for trial in range(max(1, scale.trials)):
            sketches = build(
                scale.window, budget, frame=frame, seed=1 + 101 * trial
            )
            res = runner(sketches, stream_for(seed + 31 * trial), scale)
            for name, vals in res.items():
                if name != "_checkpoint":
                    merged.setdefault(name, []).extend(vals)
                    per_trial.setdefault(name, []).append(_avg(vals))
        for name, vals in merged.items():
            s = collected.setdefault(name, Series(name, [], [], yerr=[]))
            s.x.append(mem / _KB)
            s.y.append(_avg(vals))
            spreads = per_trial[name]
            s.yerr.append(float(np.std(spreads)) if len(spreads) > 1 else float("nan"))
    # stable, paper-like ordering: SHE first, Ideal last
    order = sorted(
        collected,
        key=lambda n: (not n.startswith("SHE"), n == "Ideal", n),
    )
    result.series = [collected[n] for n in order]
    factor = (
        scale.window / (1 << 21) if panel == "b" else scale.window / scale.paper_window
    )
    result.notes.append(
        f"window N={scale.window}; budgets scaled x{factor:g}; "
        "missing cells = structure cannot exist at that budget"
    )
    return result
