"""Drivers for the system-side results: Fig. 10, Fig. 11, Tables 2-3.

Throughput figures report Mips measured on this Python substrate; the
reproducible content is the *ordering* (SHE close to the fixed-window
original, timestamp/queue baselines behind), not the absolute numbers —
see :mod:`repro.metrics.throughput`.  The FPGA tables come from the
calibrated analytic model plus the pipeline simulator's items/cycle.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import CounterVectorSketch, SlidingHyperLogLog
from repro.core import SheBitmap, SheBloomFilter, SheCountMin, SheHyperLogLog, SheMinHash
from repro.datasets import DATASETS, caida_like, relevant_pair
from repro.fixed import Bitmap, BloomFilter, CountMinSketch, HyperLogLog, MinHash
from repro.harness.common import DEFAULT_SCALE, Scale
from repro.harness.report import FigureResult, Series, render_table, fmt
from repro.hardware import (
    SHE_BF_DESIGN,
    SHE_BM_DESIGN,
    SheBmRtl,
    check_constraints,
    estimate_clock_mhz,
    estimate_resources,
)
from repro.metrics import measure_throughput

__all__ = [
    "fig10_throughput",
    "fig11_throughput",
    "table2_resources",
    "table3_frequency",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
]

#: Table 2 as printed in the paper
PAPER_TABLE2 = {
    "SHE-BM": {"lut": 1653, "register": 1509, "bram36": 0},
    "SHE-BF": {"lut": 12875, "register": 11790, "bram36": 0},
}

#: Table 3 as printed in the paper (MHz)
PAPER_TABLE3 = {"SHE-BM": 544.07, "SHE-BF": 468.82}


def _hll_pair(window: int, mem_bits: int, seed: int):
    m = max(16, mem_bits // 6)
    return (
        SheHyperLogLog(window, m, seed=seed),
        SlidingHyperLogLog(window, max(16, mem_bits // (69 * 3)), seed=seed + 1),
        HyperLogLog(m, seed=seed + 2),
    )


def fig10_throughput(
    variant: str,
    scale: Scale = DEFAULT_SCALE,
    *,
    n_items: int = 300_000,
    seed: int = 110,
) -> FigureResult:
    """Fig. 10: throughput on CAIDA/Campus/Webpage-like traces.

    Variant 'a': Ideal (fixed HLL) vs SHE-HLL vs SHLL.
    Variant 'b': Ideal (fixed Bitmap) vs SHE-BM vs CVS.
    """
    if variant not in ("a", "b"):
        raise ValueError(f"variant must be 'a' or 'b', got {variant!r}")
    result = FigureResult(
        name=f"Figure 10{variant}",
        title=(
            "throughput: SHE-HLL vs SHLL vs Ideal"
            if variant == "a"
            else "throughput: SHE-BM vs CVS vs Ideal"
        ),
        x_label="dataset",
        y_label="Mips (this substrate)",
    )
    window = scale.window
    mem_bits = 8 * 1024
    rows: dict[str, list[float]] = {}
    names = list(DATASETS)
    for ds in names:
        trace = DATASETS[ds](n_items, max(2000, n_items // 50), seed=seed).items
        if variant == "a":
            she, shll, ideal = _hll_pair(window, mem_bits, seed)
            entries = [("Ideal", ideal), ("SHE-HLL", she), ("SHLL", shll)]
        else:
            she = SheBitmap(window, 1 << 13, seed=seed)
            cvs = CounterVectorSketch(window, 1 << 13, seed=seed + 1)
            ideal = Bitmap(1 << 13, seed=seed + 2)
            entries = [("Ideal", ideal), ("SHE-BM", she), ("CVS", cvs)]
        for label, sk in entries:
            r = measure_throughput(sk, trace, warmup=min(2 * window, n_items // 4))
            rows.setdefault(label, []).append(r.mips)
    for label, ys in rows.items():
        result.series.append(Series(label, names, ys))
    return result


def fig11_throughput(
    scale: Scale = DEFAULT_SCALE,
    *,
    n_items: int = 300_000,
    mh_counters: int = 128,
    seed: int = 111,
) -> FigureResult:
    """Fig. 11: SHE vs the fixed-window original, all five sketches."""
    result = FigureResult(
        name="Figure 11",
        title="throughput: SHE vs the fixed-window ideal, five sketches",
        x_label="sketch",
        y_label="Mips (this substrate)",
    )
    window = scale.window
    trace = caida_like(n_items, max(2000, n_items // 50), seed=seed).items
    a, b = relevant_pair(n_items, max(2000, n_items // 10), seed=seed + 1)

    ideal_y, she_y, labels = [], [], []

    pairs = [
        ("BM", Bitmap(1 << 13, seed=seed), SheBitmap(window, 1 << 13, seed=seed)),
        (
            "CM-sketch",
            CountMinSketch(1 << 13, 8, seed=seed),
            SheCountMin(window, 1 << 13, seed=seed),
        ),
        ("BF", BloomFilter(1 << 16, 8, seed=seed), SheBloomFilter(window, 1 << 16, seed=seed)),
        ("HLL", HyperLogLog(1 << 11, seed=seed), SheHyperLogLog(window, 1 << 11, seed=seed)),
    ]
    for label, ideal, she in pairs:
        labels.append(label)
        ideal_y.append(measure_throughput(ideal, trace).mips)
        she_y.append(measure_throughput(she, trace).mips)

    labels.append("MH")
    mh_ideal = MinHash(mh_counters, seed=seed)
    mh_she = SheMinHash(window, mh_counters, seed=seed)
    ideal_y.append(measure_throughput(mh_ideal, a.items, side=0).mips)
    she_y.append(measure_throughput(mh_she, a.items, side=0).mips)

    result.series.append(Series("Ideal", labels, ideal_y))
    result.series.append(Series("SHE", labels, she_y))
    return result


def table2_resources() -> str:
    """Table 2: resource model vs the paper's published numbers."""
    rows = []
    for design in (SHE_BM_DESIGN, SHE_BF_DESIGN):
        est = estimate_resources(design)
        util = est.utilisation()
        paper = PAPER_TABLE2[design.name]
        rows.append(
            [
                design.name,
                f"{est.lut} ({util['lut']:.2%})",
                str(paper["lut"]),
                f"{est.register} ({util['register']:.2%})",
                str(paper["register"]),
                str(est.bram36),
                str(paper["bram36"]),
            ]
        )
    return render_table(
        "Table 2: FPGA resource utilisation (model vs paper)",
        ["design", "LUT (model)", "LUT (paper)", "Reg (model)", "Reg (paper)", "BRAM (model)", "BRAM (paper)"],
        rows,
    )


def table3_frequency(*, cosim_items: int = 2048, seed: int = 112) -> str:
    """Table 3: clock model vs paper, plus measured pipeline items/cycle.

    The items/cycle column comes from actually running the RTL pipeline
    model — one item per cycle is what turns MHz into Mips.
    """
    rtl = SheBmRtl(256, 1024, alpha=0.2, seed=2)
    rng = np.random.default_rng(seed)
    run = rtl.insert_stream(rng.integers(0, 4096, size=cosim_items, dtype=np.uint64))
    report = check_constraints(rtl.pipeline, run)
    rows = []
    for design in (SHE_BM_DESIGN, SHE_BF_DESIGN):
        mhz = estimate_clock_mhz(design)
        rows.append(
            [
                design.name,
                f"{mhz:.2f}",
                f"{PAPER_TABLE3[design.name]:.2f}",
                fmt(run.items_per_cycle),
                "yes" if report.hardware_friendly else "no",
            ]
        )
    return render_table(
        "Table 3: clock frequency (model vs paper) + pipeline behaviour",
        ["design", "MHz (model)", "MHz (paper)", "items/cycle (sim)", "constraints ok"],
        rows,
    )
