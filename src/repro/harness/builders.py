"""Per-task structure factories used by the figure drivers.

Each builder takes a memory budget in bytes and returns the dict of
named structures Fig. 9's corresponding panel compares.  Baselines that
cannot exist at a budget (SWAMP below its O(W) floor, a single EH
counter not fitting, ...) are *omitted* — the tables show "--" there,
which is precisely the paper's point about their memory floors.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import (
    CounterVectorSketch,
    EcmSketch,
    SlidingHyperLogLog,
    StrawmanMinHash,
    Swamp,
    TimeOutBloomFilter,
    TimestampVector,
    TimingBloomFilter,
)
from repro.core.registry import get_descriptor
from repro.fixed import (
    IdealCardinalityBitmap,
    IdealCardinalityHLL,
    IdealFrequency,
    IdealMembership,
    IdealSimilarity,
)

__all__ = [
    "build_membership",
    "build_cardinality_bitmap",
    "build_cardinality_hll",
    "build_frequency",
    "build_similarity",
    "shll_registers_for",
]

#: per-LPFM-entry bits (timestamp + rank) and expected entries/register
_SHLL_ENTRY_BITS = 69
_SHLL_EXPECTED_ENTRIES = 3.0


def shll_registers_for(memory_bytes: int) -> int:
    """Register count so SHLL's *expected* live size meets the budget."""
    m = int(memory_bytes * 8 / (_SHLL_ENTRY_BITS * _SHLL_EXPECTED_ENTRIES))
    return max(m, 1)


def _try(build, out: dict, name: str) -> None:
    try:
        out[name] = build()
    except ValueError:
        pass  # structure cannot exist at this budget


def build_membership(
    window: int,
    memory_bytes: int,
    *,
    alpha: float = 3.0,
    num_hashes: int = 8,
    include_baselines: bool = True,
    frame: str = "hardware",
    seed: int = 1,
) -> dict[str, object]:
    """Fig. 9d's panel: SHE-BF vs TOBF, TBF, SWAMP and the Ideal."""
    out: dict[str, object] = {}
    _try(
        lambda: get_descriptor("bf").from_memory(
            window, memory_bytes, num_hashes=num_hashes, alpha=alpha, frame=frame, seed=seed
        ),
        out,
        "SHE-BF",
    )
    _try(
        lambda: IdealMembership(window, memory_bytes * 8, num_hashes, seed=seed + 1),
        out,
        "Ideal",
    )
    if include_baselines:
        _try(lambda: TimeOutBloomFilter.from_memory(window, memory_bytes, num_hashes, seed=seed + 2), out, "TOBF")
        _try(lambda: TimingBloomFilter.from_memory(window, memory_bytes, num_hashes, seed=seed + 3), out, "TBF")
        _try(lambda: Swamp.from_memory(window, memory_bytes, seed=seed + 4), out, "SWAMP")
    return out


def build_cardinality_bitmap(
    window: int,
    memory_bytes: int,
    *,
    alpha: float = 0.2,
    include_baselines: bool = True,
    frame: str = "hardware",
    seed: int = 2,
) -> dict[str, object]:
    """Fig. 9a's panel: SHE-BM vs TSV, CVS, SWAMP and the Ideal."""
    out: dict[str, object] = {}
    _try(
        lambda: get_descriptor("bm").from_memory(
            window, memory_bytes, alpha=alpha, frame=frame, seed=seed
        ),
        out,
        "SHE-BM",
    )
    _try(lambda: IdealCardinalityBitmap(window, memory_bytes * 8, seed=seed + 1), out, "Ideal")
    if include_baselines:
        _try(lambda: TimestampVector.from_memory(window, memory_bytes, seed=seed + 2), out, "TSV")
        _try(lambda: CounterVectorSketch.from_memory(window, memory_bytes, seed=seed + 3), out, "CVS")
        _try(lambda: Swamp.from_memory(window, memory_bytes, seed=seed + 4), out, "SWAMP")
    return out


def build_cardinality_hll(
    window: int,
    memory_bytes: int,
    *,
    alpha: float = 0.2,
    include_baselines: bool = True,
    frame: str = "hardware",
    seed: int = 3,
) -> dict[str, object]:
    """Fig. 9b's panel: SHE-HLL vs SHLL and the Ideal."""
    out: dict[str, object] = {}
    _try(
        lambda: get_descriptor("hll").from_memory(
            window, memory_bytes, alpha=alpha, frame=frame, seed=seed
        ),
        out,
        "SHE-HLL",
    )
    _try(
        lambda: IdealCardinalityHLL(window, max(16, memory_bytes * 8 // 5), seed=seed + 1),
        out,
        "Ideal",
    )
    if include_baselines:
        _try(
            lambda: SlidingHyperLogLog(window, shll_registers_for(memory_bytes), seed=seed + 2),
            out,
            "SHLL",
        )
    return out


def build_frequency(
    window: int,
    memory_bytes: int,
    *,
    alpha: float = 1.0,
    num_hashes: int = 8,
    include_baselines: bool = True,
    frame: str = "hardware",
    seed: int = 4,
) -> dict[str, object]:
    """Fig. 9c's panel: SHE-CM vs ECM, SWAMP and the Ideal."""
    out: dict[str, object] = {}
    _try(
        lambda: get_descriptor("cm").from_memory(
            window, memory_bytes, num_hashes=num_hashes, alpha=alpha, frame=frame, seed=seed
        ),
        out,
        "SHE-CM",
    )
    _try(
        lambda: IdealFrequency(window, max(1, memory_bytes // 4), num_hashes, seed=seed + 1),
        out,
        "Ideal",
    )
    if include_baselines:
        _try(lambda: EcmSketch.from_memory(window, memory_bytes, 4, seed=seed + 2), out, "ECM")
        _try(lambda: Swamp.from_memory(window, memory_bytes, seed=seed + 3), out, "SWAMP")
    return out


def build_similarity(
    window: int,
    memory_bytes: int,
    *,
    alpha: float = 0.2,
    include_baselines: bool = True,
    frame: str = "hardware",
    seed: int = 5,
) -> dict[str, object]:
    """Fig. 9e's panel: SHE-MH vs the straw-man MinHash and the Ideal."""
    out: dict[str, object] = {}
    _try(
        lambda: get_descriptor("mh").from_memory(
            window, memory_bytes, alpha=alpha, frame=frame, seed=seed
        ),
        out,
        "SHE-MH",
    )
    _try(
        lambda: IdealSimilarity(window, max(8, memory_bytes * 8 // 48), seed=seed + 1),
        out,
        "Ideal",
    )
    if include_baselines:
        _try(lambda: StrawmanMinHash.from_memory(window, memory_bytes, seed=seed + 2), out, "Straw")
    return out
