"""Exact sliding-window oracle — ground truth for every accuracy metric.

Maintains the multiset of the last N items with a ring buffer plus a
hash-map of counts, giving O(1) insert and exact answers for the three
single-stream tasks (membership, cardinality, frequency).  This is the
reference every sketch is measured against; it is deliberately simple
and memory-hungry (that very cost is SWAMP's weakness the paper
exploits, and here it is the *oracle*, not a competitor).
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.common.validation import as_key_array, require_positive_int

__all__ = ["ExactWindow"]


class ExactWindow:
    """Exact multiset view of the most recent N stream items."""

    def __init__(self, window: int):
        self.window = require_positive_int("window", window)
        self._ring = np.zeros(self.window, dtype=np.uint64)
        self._counts: Counter = Counter()
        self.t = 0

    def insert(self, key: int) -> None:
        """Insert one item, expiring the one that leaves the window."""
        pos = self.t % self.window
        if self.t >= self.window:
            old = int(self._ring[pos])
            left = self._counts[old] - 1
            if left:
                self._counts[old] = left
            else:
                del self._counts[old]
        k = int(key)
        self._ring[pos] = k
        self._counts[k] += 1
        self.t += 1

    def insert_many(self, keys) -> None:
        """Insert a batch in arrival order."""
        for k in as_key_array(keys):
            self.insert(int(k))

    def contains(self, key: int) -> bool:
        """Exact membership of ``key`` in the current window."""
        return int(key) in self._counts

    def contains_many(self, keys) -> np.ndarray:
        """Vectorised exact membership."""
        return np.fromiter(
            (int(k) in self._counts for k in as_key_array(keys)),
            dtype=bool,
        )

    def frequency(self, key: int) -> int:
        """Exact count of ``key`` in the current window."""
        return self._counts.get(int(key), 0)

    def frequency_many(self, keys) -> np.ndarray:
        """Vectorised exact frequencies."""
        return np.fromiter(
            (self._counts.get(int(k), 0) for k in as_key_array(keys)),
            dtype=np.int64,
        )

    def cardinality(self) -> int:
        """Exact number of distinct keys in the current window."""
        return len(self._counts)

    def distinct_keys(self) -> np.ndarray:
        """The distinct keys currently in the window."""
        return np.fromiter(self._counts.keys(), dtype=np.uint64)

    def key_set(self) -> set[int]:
        """The window's distinct keys as a Python set."""
        return set(self._counts.keys())

    def items(self) -> np.ndarray:
        """The window contents in arrival order (oldest first)."""
        n = min(self.t, self.window)
        if self.t <= self.window:
            return self._ring[:n].copy()
        pos = self.t % self.window
        return np.concatenate([self._ring[pos:], self._ring[:pos]])

    @property
    def memory_bytes(self) -> int:
        """Honest footprint: the ring plus ~16 B per live hash-map entry.

        This O(W) cost is exactly why exact structures (and SWAMP) lose
        the paper's memory sweeps — the oracle is for ground truth, not
        for competing.
        """
        return self.window * 8 + len(self._counts) * 16

    def reset(self) -> None:
        """Empty the window and rewind the clock."""
        self._ring.fill(0)
        self._counts.clear()
        self.t = 0
