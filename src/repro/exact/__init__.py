"""Exact sliding-window oracles (ground truth for all metrics)."""

from repro.exact.similarity import ExactJaccard, jaccard
from repro.exact.window import ExactWindow

__all__ = ["ExactWindow", "ExactJaccard", "jaccard"]
