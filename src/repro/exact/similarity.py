"""Exact windowed Jaccard similarity — ground truth for SHE-MH.

Tracks two :class:`~repro.exact.window.ExactWindow` instances and
reports the Jaccard index of their distinct-key sets, the quantity
§2.1 defines and Fig. 9e / Fig. 5e / Fig. 6e measure.
"""

from __future__ import annotations

from repro.common.validation import require_positive_int
from repro.exact.window import ExactWindow

__all__ = ["ExactJaccard", "jaccard"]


def jaccard(a: set, b: set) -> float:
    """Jaccard index of two sets; 0 for two empty sets (disjoint limit)."""
    if not a and not b:
        return 0.0
    inter = len(a & b)
    union = len(a) + len(b) - inter
    return inter / union


class ExactJaccard:
    """Exact Jaccard similarity between two sliding windows."""

    def __init__(self, window: int):
        self.window = require_positive_int("window", window)
        self.sides = (ExactWindow(window), ExactWindow(window))

    def insert(self, side: int, key: int) -> None:
        """Insert one item into stream ``side`` (0 or 1)."""
        if side not in (0, 1):
            raise ValueError(f"side must be 0 or 1, got {side}")
        self.sides[side].insert(key)

    def insert_many(self, side: int, keys) -> None:
        """Insert a batch into one stream."""
        if side not in (0, 1):
            raise ValueError(f"side must be 0 or 1, got {side}")
        self.sides[side].insert_many(keys)

    def similarity(self) -> float:
        """Exact Jaccard index of the two current windows."""
        return jaccard(self.sides[0].key_set(), self.sides[1].key_set())

    def reset(self) -> None:
        """Empty both windows."""
        for s in self.sides:
            s.reset()
