"""Eq. 2 check: the analytic optimal alpha matches an empirical sweep.

Not a figure in the paper, but the claim behind §7.1's "alpha is
determined according to Equation 2, which is roughly 3".
"""

import numpy as np
from conftest import emit

from repro.analysis import optimal_alpha
from repro.core import SheBloomFilter
from repro.datasets import distinct_stream
from repro.harness.report import render_table


def _empirical_fpr(alpha: float, window: int, num_bits: int, seed: int = 0) -> float:
    stream = distinct_stream(5 * window, seed=seed).items
    bf = SheBloomFilter(window, num_bits, alpha=alpha, num_hashes=8, seed=seed)
    bf.insert_many(stream)
    probes = (np.uint64(1) << np.uint64(55)) + np.arange(4000, dtype=np.uint64)
    return float(bf.contains_many(probes).mean())


def test_eq2_alpha_is_near_empirical_optimum(benchmark, results_dir):
    window, num_bits = 1 << 11, 1 << 16

    def run():
        alphas = [0.5, 1.0, 2.0, 3.0, 5.0, 8.0]
        fprs = [np.mean([_empirical_fpr(a, window, num_bits, s) for s in range(3)]) for a in alphas]
        a_star = optimal_alpha(window, 8, num_bits)
        f_star = np.mean([_empirical_fpr(a_star, window, num_bits, s) for s in range(3)])
        return alphas, fprs, a_star, f_star

    alphas, fprs, a_star, f_star = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[f"{a:g}", f"{f:.2e}"] for a, f in zip(alphas, fprs)]
    rows.append([f"{a_star:.2f} (Eq. 2)", f"{f_star:.2e}"])
    emit(results_dir, "eq2", render_table("Eq. 2: empirical FPR vs alpha (Distinct Stream)", ["alpha", "FPR"], rows))
    # Eq. 2's alpha performs within 2x of the best sampled alpha
    assert f_star <= 2 * min(fprs) + 1e-4
