"""Table 3: clock frequency model + pipeline items/cycle simulation."""

from conftest import emit

from repro.harness import PAPER_TABLE3, table3_frequency
from repro.hardware import SHE_BF_DESIGN, SHE_BM_DESIGN, estimate_clock_mhz


def test_table3_frequency(benchmark, results_dir):
    text = benchmark.pedantic(table3_frequency, rounds=1, iterations=1)
    emit(results_dir, "table3", text)
    bm = estimate_clock_mhz(SHE_BM_DESIGN)
    bf = estimate_clock_mhz(SHE_BF_DESIGN)
    assert abs(bm - PAPER_TABLE3["SHE-BM"]) < 0.01
    assert abs(bf - PAPER_TABLE3["SHE-BF"]) / PAPER_TABLE3["SHE-BF"] < 0.005
    assert bm > bf  # paper ordering
