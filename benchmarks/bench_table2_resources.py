"""Table 2: FPGA resource utilisation (calibrated model vs paper)."""

from conftest import emit

from repro.harness import PAPER_TABLE2, table2_resources
from repro.hardware import SHE_BF_DESIGN, SHE_BM_DESIGN, estimate_resources


def test_table2_resources(benchmark, results_dir):
    text = benchmark.pedantic(table2_resources, rounds=3, iterations=1)
    emit(results_dir, "table2", text)
    bm = estimate_resources(SHE_BM_DESIGN)
    bf = estimate_resources(SHE_BF_DESIGN)
    # paper shape: BM exact by calibration, BF within 0.5%, no BRAM
    assert bm.lut == PAPER_TABLE2["SHE-BM"]["lut"]
    assert abs(bf.lut - PAPER_TABLE2["SHE-BF"]["lut"]) / PAPER_TABLE2["SHE-BF"]["lut"] < 0.005
    assert bm.bram36 == bf.bram36 == 0
