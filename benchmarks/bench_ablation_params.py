"""Ablations over per-sketch parameters beyond the paper's sweeps.

* SHE-CM hash count k at fixed memory (the paper fixes k=8; the CM
  trade-off — fewer rows, less noise-per-row — shifts under SHE because
  young counters are discarded too);
* legal-band edge beta for SHE-HLL and SHE-MH (Fig. 7's alpha story,
  replayed for the band's other edge on the two-sided estimators).
"""

import numpy as np
from conftest import emit

from repro.core import SheCountMin, SheHyperLogLog, SheMinHash
from repro.datasets import caida_like, relevant_pair
from repro.exact import ExactJaccard, ExactWindow
from repro.harness.report import render_table


def test_ablation_cm_hash_count(benchmark, results_dir):
    window = 1 << 12
    trace = caida_like(6 * window, 2 * window, seed=31).items

    def run():
        rows = []
        for k in (2, 4, 8, 16):
            ares = []
            for seed in range(2):
                cm = SheCountMin(window, 1 << 14, num_hashes=k, alpha=1.0, seed=seed + 1)
                ew = ExactWindow(window)
                step = window // 2
                for lo in range(0, trace.size, step):
                    cm.insert_many(trace[lo : lo + step])
                    ew.insert_many(trace[lo : lo + step])
                    if lo >= 2 * window:
                        keys = ew.distinct_keys()[:300]
                        t = ew.frequency_many(keys).astype(float)
                        e = cm.frequency_many(keys)
                        ares.append(float(np.mean(np.abs(e - t) / t)))
            rows.append((k, float(np.mean(ares))))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        results_dir,
        "ablation_cm_hashes",
        render_table(
            "Ablation: SHE-CM hash count at fixed memory (ARE)",
            ["k", "ARE"],
            [[str(k), f"{a:.4f}"] for k, a in rows],
        ),
    )
    by = dict(rows)
    # k=8 (the paper's pick) must not be dominated by the extremes
    assert by[8] <= 1.5 * min(by.values())


def test_ablation_estimator_beta(benchmark, results_dir):
    window = 1 << 12

    def run():
        trace = caida_like(6 * window, 2 * window, seed=32).items
        a, b = relevant_pair(6 * window, window, overlap=0.5, seed=33)
        rows = []
        for beta in (0.95, 0.9, 0.8):
            hll_err, mh_err = [], []
            for seed in range(2):
                hll = SheHyperLogLog(window, 2048, beta=beta, seed=seed + 5)
                ewh = ExactWindow(window)
                mh = SheMinHash(window, 512, beta=beta, seed=seed + 6)
                ej = ExactJaccard(window)
                step = window // 2
                for lo in range(0, 6 * window, step):
                    hll.insert_many(trace[lo : lo + step])
                    ewh.insert_many(trace[lo : lo + step])
                    mh.insert_many(0, a.items[lo : lo + step])
                    mh.insert_many(1, b.items[lo : lo + step])
                    ej.insert_many(0, a.items[lo : lo + step])
                    ej.insert_many(1, b.items[lo : lo + step])
                    if lo >= 2 * window:
                        hll_err.append(
                            abs(hll.cardinality() - ewh.cardinality()) / ewh.cardinality()
                        )
                        true_s = ej.similarity()
                        if true_s > 0:
                            mh_err.append(abs(mh.similarity() - true_s) / true_s)
            rows.append((beta, float(np.mean(hll_err)), float(np.mean(mh_err))))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        results_dir,
        "ablation_estimator_beta",
        render_table(
            "Ablation: legal-band edge beta for SHE-HLL / SHE-MH (RE)",
            ["beta", "SHE-HLL RE", "SHE-MH RE"],
            [[f"{b:g}", f"{h:.4f}", f"{m:.4f}"] for b, h, m in rows],
        ),
    )
    # a wider band (more cells) must not be catastrophically worse
    errs = {b: (h, m) for b, h, m in rows}
    assert errs[0.8][0] < 3 * errs[0.95][0] + 0.05
