"""Fig. 8: SHE-BF parameter studies on the Distinct Stream.

Paper shape: (a) FPR decays roughly exponentially with item age until
the relaxed window (1+alpha)N, then flattens; (b) the Eq.-2 optimal
alpha is competitive across hash counts.
"""

import numpy as np
from conftest import emit

from repro.harness import Scale, fig8a_fpr_vs_item_age, fig8b_fpr_vs_num_hashes


def test_fig8a_fpr_vs_item_age(benchmark, results_dir):
    scale = Scale(window=1 << 11, n_windows=3, warm_windows=2)
    result = benchmark.pedantic(
        lambda: fig8a_fpr_vs_item_age(scale, trials=3), rounds=1, iterations=1
    )
    emit(results_dir, "fig8a", result.table())
    s = result.series[0]
    ys = np.asarray(s.y, dtype=float)
    # decay through the relaxed window, flat floor afterwards
    assert ys[0] > ys[2] >= ys[-1] - 0.05


def test_fig8b_fpr_vs_num_hashes(benchmark, results_dir):
    scale = Scale(window=1 << 11, n_windows=3, warm_windows=2)
    result = benchmark.pedantic(
        lambda: fig8b_fpr_vs_num_hashes(scale, hash_counts=(2, 4, 8, 16)),
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "fig8b", result.table())
    fixed = np.asarray(result.series[0].y, dtype=float)
    optimal = np.asarray(result.series[1].y, dtype=float)
    # Eq. 2's alpha never loses badly to the fixed default across k
    assert np.mean(optimal) <= np.mean(fixed) * 2 + 1e-3
