"""Ablation: insertion batch size vs throughput and exactness.

The vectorised batch path is bit-exact at any chunking (proved by the
property tests); this bench shows the throughput side: per-item Python
costs dominate below ~1K-item chunks, and the curve saturates once
NumPy overheads amortise — the guide-recommended profile-then-vectorise
result, quantified.
"""

import numpy as np
from conftest import emit

from repro.core import SheBloomFilter
from repro.datasets import caida_like
from repro.harness.report import render_table
from repro.metrics import measure_throughput


def test_ablation_batch_size(benchmark, results_dir):
    window = 1 << 12
    trace = caida_like(300_000, 2 * window, seed=13).items

    def run():
        rows = []
        for chunk in (64, 256, 1024, 8192, 65536):
            bf = SheBloomFilter(window, 1 << 16, seed=3)
            r = measure_throughput(bf, trace, chunk=chunk)
            rows.append((chunk, r.mips))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        results_dir,
        "ablation_batch",
        render_table(
            "Ablation: SHE-BF insertion throughput vs batch size",
            ["chunk (items)", "Mips"],
            [[str(c), f"{m:.2f}"] for c, m in rows],
        ),
    )
    by = dict(rows)
    assert max(by[1024], by[8192]) > 2 * by[64]  # vectorisation pays off
    # exactness across chunkings (spot check on final state)
    a = SheBloomFilter(window, 1 << 16, seed=3)
    b = SheBloomFilter(window, 1 << 16, seed=3)
    for lo in range(0, 50_000, 173):
        a.insert_many(trace[lo : min(lo + 173, 50_000)])
    b.insert_many(trace[:50_000])
    a.frame.prepare_query_all(a.now())
    b.frame.prepare_query_all(b.now())
    assert np.array_equal(a.frame.cells, b.frame.cells)
