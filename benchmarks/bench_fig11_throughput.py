"""Fig. 11: SHE vs the fixed-window ideal across all five sketches.

Paper shape: SHE's processing speed is comparable to the original
algorithms — the sliding-window machinery costs a small constant, not
an asymptotic slowdown.
"""

import numpy as np
from conftest import emit

from repro.harness import fig11_throughput


def test_fig11_throughput(benchmark, results_dir, bench_scale):
    result = benchmark.pedantic(
        lambda: fig11_throughput(bench_scale, n_items=150_000),
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "fig11", result.table())
    ideal = np.asarray(result.series[0].y, dtype=float)
    she = np.asarray(result.series[1].y, dtype=float)
    # same order of magnitude on every sketch
    assert np.all(she > ideal / 10)
    assert np.all(she > 0)
