"""Fig. 5 (a-e): stability of the five SHE sketches as the window slides.

Paper shape: with sufficient memory each algorithm's error stays flat
over time — no drift as the window slides.
"""

import numpy as np
import pytest
from conftest import emit

from repro.harness import fig5_stability


@pytest.mark.parametrize("task,letter", [("bm", "a"), ("hll", "b"), ("cm", "c"), ("bf", "d"), ("mh", "e")])
def test_fig5_stability(benchmark, results_dir, bench_scale, task, letter):
    result = benchmark.pedantic(
        lambda: fig5_stability(task, bench_scale), rounds=1, iterations=1
    )
    emit(results_dir, f"fig5{letter}", result.table())
    # stability: at the largest memory the error must not trend upward —
    # compare the first and last halves of the time series.  §7.2 notes
    # stability "especially for SHE-BF and SHE-CM"; the small-sample
    # estimators (BM/HLL/MH) are intrinsically noisier, so their band
    # is wider.
    best = result.series[-1]
    ys = np.asarray(best.y, dtype=float)
    first, second = ys[: len(ys) // 2], ys[len(ys) // 2 :]
    slack = (2.0, 0.05) if task in ("bf", "cm") else (4.0, 0.25)
    assert np.mean(second) < max(slack[0] * np.mean(first), np.mean(first) + slack[1])
