"""Ablations of the design choices DESIGN.md calls out.

* group width w vs on-demand cleaning failures (Eq. 1 in practice);
* alpha sweep for the two-sided estimators beyond Fig. 7;
* legal-band lower edge beta (the paper fixes 0.9; symmetric
  ``beta = 1 - alpha`` halves SHE-BM's bias floor);
* software (per-cell sweep) vs hardware (group marks) accuracy gap —
  the price of hardware-friendliness.
"""

import numpy as np
from conftest import emit

from repro.core import SheBitmap, SheBloomFilter
from repro.datasets import caida_like
from repro.exact import ExactWindow
from repro.harness.report import render_table


def _bm_error(window, stream, *, beta=0.9, alpha=0.2, frame="hardware", bits=1 << 13, w=64, seeds=3):
    errs = []
    for seed in range(seeds):
        kwargs = dict(alpha=alpha, beta=beta, frame=frame, seed=seed + 1)
        if frame == "hardware":
            kwargs["group_width"] = w
        bm = SheBitmap(window, bits, **kwargs)
        ew = ExactWindow(window)
        step = window // 2
        for lo in range(0, stream.size, step):
            bm.insert_many(stream[lo : lo + step])
            ew.insert_many(stream[lo : lo + step])
            if lo >= 2 * window:
                errs.append(abs(bm.cardinality() - ew.cardinality()) / ew.cardinality())
    return float(np.mean(errs))


def test_ablation_group_width(benchmark, results_dir):
    """Wider groups -> fewer marks but coarser cleaning; Eq. 1 governs."""
    window = 1 << 12
    stream = caida_like(6 * window, 2 * window, seed=1).items

    def run():
        return [(w, _bm_error(window, stream, w=w)) for w in (8, 32, 64, 256)]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        results_dir,
        "ablation_group_width",
        render_table(
            "Ablation: SHE-BM group width (RE, CAIDA-like)",
            ["w", "RE"],
            [[str(w), f"{e:.4f}"] for w, e in rows],
        ),
    )
    errs = [e for _, e in rows]
    assert max(errs) < 4 * min(errs)  # accuracy is robust to w


def test_ablation_alpha_bm(benchmark, results_dir):
    """Beyond Fig. 7b: large alpha blows up the aged bias."""
    window = 1 << 12
    stream = caida_like(6 * window, 2 * window, seed=2).items

    def run():
        return [(a, _bm_error(window, stream, alpha=a)) for a in (0.1, 0.2, 0.4, 1.0, 3.0)]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        results_dir,
        "ablation_alpha",
        render_table(
            "Ablation: SHE-BM alpha sweep (RE, CAIDA-like)",
            ["alpha", "RE"],
            [[f"{a:g}", f"{e:.4f}"] for a, e in rows],
        ),
    )
    small = min(e for a, e in rows if a <= 0.4)
    huge = dict(rows)[3.0]
    assert huge > small  # the paper's 0.2-0.4 band is the right regime


def test_ablation_beta(benchmark, results_dir):
    """The symmetric band beta = 1 - alpha beats the paper's 0.9."""
    window = 1 << 12
    stream = caida_like(6 * window, 2 * window, seed=3).items

    def run():
        return [(b, _bm_error(window, stream, beta=b)) for b in (0.95, 0.9, 0.8, 0.7)]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        results_dir,
        "ablation_beta",
        render_table(
            "Ablation: SHE-BM legal-band edge beta (alpha=0.2)",
            ["beta", "RE"],
            [[f"{b:g}", f"{e:.4f}"] for b, e in rows],
        ),
    )
    by = dict(rows)
    assert by[0.8] < by[0.95]  # symmetric band debiases


def test_ablation_software_vs_hardware(benchmark, results_dir):
    """Group marks vs the exact sweep: the hardware version costs little."""
    window = 1 << 12
    stream = caida_like(6 * window, 2 * window, seed=4).items

    def run():
        hw = _bm_error(window, stream, frame="hardware")
        sw = _bm_error(window, stream, frame="software")
        # membership FPR comparison too
        out = {}
        for frame in ("hardware", "software"):
            bf = SheBloomFilter(window, 1 << 16, frame=frame, seed=9)
            bf.insert_many(stream)
            probes = (np.uint64(1) << np.uint64(55)) + np.arange(4000, dtype=np.uint64)
            out[frame] = float(bf.contains_many(probes).mean())
        return hw, sw, out

    hw, sw, fpr = benchmark.pedantic(run, rounds=1, iterations=1)
    # throughput of the two cleaning disciplines on the same stream
    from repro.metrics import measure_throughput

    window = 1 << 12
    stream = caida_like(200_000, 2 * window, seed=5).items
    mips = {}
    for fr in ("hardware", "software"):
        bm = SheBitmap(window, 1 << 13, frame=fr, seed=6)
        mips[fr] = measure_throughput(bm, stream).mips
    emit(
        results_dir,
        "ablation_soft_vs_hard",
        render_table(
            "Ablation: software sweep vs hardware group marks",
            ["metric", "software", "hardware"],
            [
                ["SHE-BM RE", f"{sw:.4f}", f"{hw:.4f}"],
                ["SHE-BF FPR", f"{fpr['software']:.2e}", f"{fpr['hardware']:.2e}"],
                ["SHE-BM Mips", f"{mips['software']:.1f}", f"{mips['hardware']:.1f}"],
            ],
        ),
    )
    assert hw < 3 * sw + 0.05  # grouping costs little accuracy
