"""Shared benchmark fixtures.

Every benchmark regenerates one paper table/figure at a reduced scale,
times it via pytest-benchmark, prints the resulting table and persists
it under ``results/`` so EXPERIMENTS.md can quote stable artefacts.
"""

from pathlib import Path

import pytest

from repro.harness import Scale


def pytest_addoption(parser):
    parser.addoption(
        "--obs",
        choices=("off", "on"),
        default="off",
        help="run service benchmarks with engine observability enabled "
        "('on') or on the no-op stand-ins ('off', the default)",
    )
    parser.addoption(
        "--wal",
        choices=("off", "interval", "always"),
        default="off",
        help="run service benchmarks with a write-ahead log under the "
        "given fsync policy ('off', the default, disables the WAL)",
    )
    parser.addoption(
        "--transport",
        choices=("pickle", "shm"),
        default="pickle",
        help="flush transport for the service benchmarks: 'pickle' "
        "ships arrays over executor pipes (the default), 'shm' ships "
        "slot descriptors into a shared-memory ring",
    )


@pytest.fixture(scope="session")
def obs_mode(request):
    """Whether the service benchmarks build engines with obs enabled."""
    return request.config.getoption("--obs")


@pytest.fixture(scope="session")
def wal_mode(request):
    """Whether the service benchmarks log ingests to a WAL, and how
    durably ('interval'/'always' fsync policies)."""
    return request.config.getoption("--wal")


@pytest.fixture(scope="session")
def transport_mode(request):
    """Which flush transport the service benchmarks build engines with."""
    return request.config.getoption("--transport")


@pytest.fixture(scope="session")
def results_dir():
    d = Path(__file__).resolve().parent.parent / "results"
    d.mkdir(exist_ok=True)
    return d


@pytest.fixture(scope="session")
def bench_scale():
    """Default benchmark scale: paper shapes at laptop cost."""
    return Scale(window=1 << 12, n_windows=4, warm_windows=2)


@pytest.fixture(scope="session")
def small_scale():
    """Smaller scale for the heavier sweeps (Fig. 6, Fig. 9c)."""
    return Scale(window=1 << 11, n_windows=3, warm_windows=2)


def emit(results_dir, name: str, text: str) -> None:
    """Print and persist one regenerated table."""
    print("\n" + text)
    (results_dir / f"{name}.txt").write_text(text)
