"""Fig. 6 (a-e): SHE across window sizes at fixed memory.

Paper shape: the error stays of the same order as the window grows
16-fold with the structure size held constant.
"""

import numpy as np
import pytest
from conftest import emit

from repro.harness import fig6_window_sizes


@pytest.mark.parametrize("task,letter", [("bm", "a"), ("hll", "b"), ("cm", "c"), ("bf", "d"), ("mh", "e")])
def test_fig6_window_adaptation(benchmark, results_dir, small_scale, task, letter):
    result = benchmark.pedantic(
        lambda: fig6_window_sizes(task, small_scale), rounds=1, iterations=1
    )
    emit(results_dir, f"fig6{letter}", result.table())
    # adaptation: at the largest memory the error does not explode with N
    best = result.series[-1]
    ys = np.asarray(best.y, dtype=float)
    finite = ys[np.isfinite(ys)]
    assert finite.size >= 2
    assert finite[-1] < 10 * max(finite[0], 0.01)
