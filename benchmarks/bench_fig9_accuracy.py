"""Fig. 9 (a-e): accuracy of SHE vs competitors vs the Ideal, by memory.

The paper's headline comparisons.  Shapes asserted per panel:

* (a) SHE-BM beats TSV/CVS at small budgets; SWAMP only exists at the
  top of the sweep (its O(W) floor).
* (b) SHE-HLL beats SHLL at equal (live) memory.
* (c) SHE-CM beats ECM where memory is scarce.
* (d) SHE-BF's FPR is >= 10x below TOBF/TBF under the sweep's budgets.
* (e) SHE-MH beats the straw-man MinHash.
"""

import numpy as np
import pytest
from conftest import emit

from repro.harness import fig9_accuracy


def _series(result):
    """label -> {x: y}; series may cover different memory subsets."""
    return {s.label: dict(zip(s.x, s.y)) for s in result.series}


def _mean_over(by, label, xs):
    vals = [by[label][x] for x in xs if x in by[label]]
    return float(np.mean(vals)) if vals else float("nan")


def test_fig9a_cardinality_bitmap(benchmark, results_dir, bench_scale):
    result = benchmark.pedantic(lambda: fig9_accuracy("a", bench_scale), rounds=1, iterations=1)
    emit(results_dir, "fig9a", result.table())
    by = _series(result)
    low = sorted(by["SHE-BM"])[:3]  # the small-memory regime
    assert _mean_over(by, "SHE-BM", low) < 0.5 * _mean_over(by, "TSV", low)
    # SWAMP exists only at the top of the sweep (its O(W) floor)
    if "SWAMP" in by:
        assert all(x not in by["SWAMP"] for x in low)


def test_fig9b_cardinality_hll(benchmark, results_dir, bench_scale):
    result = benchmark.pedantic(lambda: fig9_accuracy("b", bench_scale), rounds=1, iterations=1)
    emit(results_dir, "fig9b", result.table())
    by = _series(result)
    xs = sorted(by["SHE-HLL"])
    assert _mean_over(by, "SHE-HLL", xs) < _mean_over(by, "SHLL", xs)


def test_fig9c_frequency(benchmark, results_dir, small_scale):
    result = benchmark.pedantic(lambda: fig9_accuracy("c", small_scale), rounds=1, iterations=1)
    emit(results_dir, "fig9c", result.table())
    by = _series(result)
    xs = sorted(by["SHE-CM"])
    if "ECM" in by:
        assert _mean_over(by, "SHE-CM", xs) < _mean_over(by, "ECM", xs)
    assert _mean_over(by, "SHE-CM", xs) < 2.0


def test_fig9d_membership(benchmark, results_dir, bench_scale):
    result = benchmark.pedantic(lambda: fig9_accuracy("d", bench_scale), rounds=1, iterations=1)
    emit(results_dir, "fig9d", result.table())
    by = _series(result)
    mid = sorted(by["SHE-BF"])[1:]  # past the leftmost (saturated) point
    assert _mean_over(by, "SHE-BF", mid) * 10 < _mean_over(by, "TOBF", mid) + 1e-9


def test_fig9e_similarity(benchmark, results_dir, bench_scale):
    result = benchmark.pedantic(
        lambda: fig9_accuracy("e", bench_scale, memories=[4096, 8192, 16384]),
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "fig9e", result.table())
    by = _series(result)
    xs = sorted(by["SHE-MH"])
    assert _mean_over(by, "SHE-MH", xs) < _mean_over(by, "Straw", xs)
