"""Fig. 10: insertion throughput on the three datasets.

Paper shape: SHE is much faster than the queue/decay baselines and of
the same order as the fixed-window ideal — on every dataset.
"""

import numpy as np
from conftest import emit

from repro.harness import fig10_throughput


def _by_label(result):
    return {s.label: np.asarray(s.y, dtype=float) for s in result.series}


def test_fig10a_hll_throughput(benchmark, results_dir, bench_scale):
    result = benchmark.pedantic(
        lambda: fig10_throughput("a", bench_scale, n_items=150_000),
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "fig10a", result.table())
    by = _by_label(result)
    assert np.all(by["SHE-HLL"] > by["SHLL"])  # on every dataset


def test_fig10b_bm_throughput(benchmark, results_dir, bench_scale):
    result = benchmark.pedantic(
        lambda: fig10_throughput("b", bench_scale, n_items=150_000),
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "fig10b", result.table())
    by = _by_label(result)
    assert np.all(by["SHE-BM"] > by["CVS"])
    assert np.all(by["SHE-BM"] > by["Ideal"] / 10)
