"""Service throughput: single sketch vs the sharded engine.

Not a paper figure — this benchmarks the serving layer the ROADMAP asks
for.  One SHE-CM sketch is the baseline; the engine is measured at
1/2/4/8 shards with the in-process executor and at 2/4 shards with the
multiprocessing executor.  The in-process engine pays the partitioning
and buffering tax (expected to land within a small factor of the bare
sketch); the process executor amortises it once flushes parallelise
across cores.  Mips tables land in ``results/bench_service.txt``.
"""

import time

import numpy as np
from conftest import emit

from repro.core import SheCountMin
from repro.datasets import BoundedZipf
from repro.metrics import measure_throughput
from repro.service import EngineConfig, StreamEngine

WINDOW = 1 << 14
SIZE = 1 << 13
N_ITEMS = 400_000
CHUNK = 8192


def _stream():
    return BoundedZipf(50_000, 1.05, seed=31).sample(N_ITEMS)


def _engine_mips(stream, shards, executor, num_workers=None):
    cfg = EngineConfig(
        "cm",
        window=WINDOW,
        size=SIZE,
        num_shards=shards,
        flush_batch_size=CHUNK,
        flush_interval_s=None,
        sketch_kwargs={"seed": 7},
    )
    with StreamEngine(cfg, executor=executor, num_workers=num_workers) as eng:
        started = time.perf_counter()
        for lo in range(0, stream.size, CHUNK):
            eng.ingest(stream[lo : lo + CHUNK])
        eng.flush()
        seconds = time.perf_counter() - started
    return stream.size / seconds / 1e6


def test_service_throughput(benchmark, results_dir):
    stream = _stream()

    def run():
        rows = []
        base = measure_throughput(
            SheCountMin(WINDOW, SIZE, seed=7), stream, chunk=CHUNK,
            name="SHE-CM insert_many",
        )
        rows.append(("single sketch", "-", base.mips))
        for shards in (1, 2, 4, 8):
            rows.append(
                (f"engine serial x{shards}", shards, _engine_mips(stream, shards, "serial"))
            )
        for shards in (2, 4):
            rows.append(
                (
                    f"engine process x{shards}",
                    shards,
                    _engine_mips(stream, shards, "process", num_workers=shards),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    header = f"{'configuration':<24} {'shards':>6} {'Mips':>8}"
    lines = [header, "-" * len(header)]
    for name, shards, mips in rows:
        lines.append(f"{name:<24} {shards!s:>6} {mips:>8.2f}")
    emit(results_dir, "bench_service", "\n".join(lines) + "\n")

    by = {name: mips for name, _, mips in rows}
    # the serving layer must stay within a small factor of the raw sketch
    assert by["engine serial x1"] > by["single sketch"] / 5
    # sharding in-process must not collapse throughput
    assert by["engine serial x4"] > by["single sketch"] / 8
