"""Service throughput: single sketch vs the sharded engine.

Not a paper figure — this benchmarks the serving layer the ROADMAP asks
for.  One SHE-CM sketch is the baseline; the engine is measured at
1/2/4/8 shards with the in-process executor and at 2/4 shards with the
multiprocessing executor.  The in-process engine pays the partitioning
and buffering tax (expected to land within a small factor of the bare
sketch); the process executor amortises it once flushes parallelise
across cores.  Mips tables land in ``results/bench_service.txt`` and a
machine-readable trajectory in ``BENCH_service.json`` at the repo root.

Observability modes:

* ``pytest benchmarks/bench_service_throughput.py --obs on`` runs the
  same grid with engines built ``obs=True`` (live registry, spans,
  per-shard counters) — the number that matters for instrumented
  deployments.
* ``python benchmarks/bench_service_throughput.py --check-obs`` is the
  CI mode: no pytest-benchmark needed, measures the obs-on vs obs-off
  ingest overhead directly and fails when the *disabled* path's
  overhead bound is blown (the obs subsystem must be free when off).

Durability modes:

* ``pytest benchmarks/bench_service_throughput.py --wal interval``
  (or ``always``) runs the grid with engines appending every admitted
  batch to a write-ahead log under that fsync policy — the sustained
  cost of crash safety.
* ``python benchmarks/bench_service_throughput.py --check-wal`` is the
  CI gate: serial-engine ingest at WAL off / ``interval`` / ``always``,
  failing when logging overhead blows its bound.  Results merge into
  ``BENCH_service.json`` under ``wal_overhead``.

Transport modes:

* ``pytest benchmarks/bench_service_throughput.py --transport shm``
  runs the process-executor rows over the shared-memory data plane
  (``EngineConfig(transport="shm")``) instead of pickled pipes.
* ``python benchmarks/bench_service_throughput.py --check-transport``
  is the CI gate: shm vs pickle throughput measured in adjacent pairs
  (see :func:`check_transport` for the methodology), failing when the
  zero-copy path loses its edge.  Results merge into
  ``BENCH_service.json`` under ``transport``.
"""

import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core import SheCountMin
from repro.datasets import BoundedZipf
from repro.metrics import measure_throughput
from repro.service import EngineConfig, StreamEngine

WINDOW = 1 << 14
SIZE = 1 << 13
N_ITEMS = 400_000
CHUNK = 8192

_REPO_ROOT = Path(__file__).resolve().parent.parent


def _stream(n_items: int = N_ITEMS):
    return BoundedZipf(50_000, 1.05, seed=31).sample(n_items)


def _engine_mips(stream, shards, executor, num_workers=None, obs=False,
                 wal="off", transport="pickle"):
    """Ingest Mips for one engine configuration.

    ``wal`` is ``"off"`` (no log) or a fsync policy (``"interval"`` /
    ``"always"``); WAL runs log into a throwaway temp directory so the
    measurement includes the real write(+fsync) path.  ``transport``
    selects the flush data plane (``"pickle"`` / ``"shm"``).
    """
    with tempfile.TemporaryDirectory(prefix="bench-wal-") as td:
        extra = {}
        if wal != "off":
            extra = {"wal_dir": str(Path(td) / "wal"), "wal_fsync": wal}
        cfg = EngineConfig(
            "cm",
            window=WINDOW,
            size=SIZE,
            num_shards=shards,
            flush_batch_size=CHUNK,
            flush_interval_s=None,
            transport=transport,
            sketch_kwargs={"seed": 7},
            **extra,
        )
        with StreamEngine(
            cfg, executor=executor, num_workers=num_workers, obs=obs
        ) as eng:
            started = time.perf_counter()
            for lo in range(0, stream.size, CHUNK):
                eng.ingest(stream[lo : lo + CHUNK])
            eng.flush()
            seconds = time.perf_counter() - started
    return stream.size / seconds / 1e6


#: repeats per throughput row — rows report the best of these, so one
#: noisy-neighbour stall cannot poison the committed trajectory
BEST_OF = 3


def _best_engine_mips(*args, k: int = BEST_OF, **kwargs) -> float:
    """Best-of-``k`` :func:`_engine_mips` for one configuration."""
    return max(_engine_mips(*args, **kwargs) for _ in range(k))


def _write_bench_json(rows, obs_mode, extra=None, n_items=N_ITEMS) -> None:
    """Persist the machine-readable perf trajectory at the repo root.

    ``rows`` are ``(name, shards, transport, mips)``; every row carries
    the transport it was measured under so trajectories under different
    data planes never get compared silently.  Sections other check
    modes merged in (``transport``, ``windowed_overhead``,
    ``wal_overhead``) are preserved, so the check order does not matter.
    """
    path = _REPO_ROOT / "BENCH_service.json"
    payload = json.loads(path.read_text()) if path.exists() else {}
    payload.update({
        "benchmark": "bench_service_throughput",
        "obs_mode": obs_mode,
        "n_items": n_items,
        "window": WINDOW,
        "size": SIZE,
        "best_of": BEST_OF,
        "rows": [
            {
                "configuration": name,
                "shards": shards,
                "transport": transport,
                "mips": round(mips, 3),
            }
            for name, shards, transport, mips in rows
        ],
    })
    if extra:
        payload.update(extra)
    path.write_text(json.dumps(payload, indent=2) + "\n")


def test_service_throughput(
    benchmark, results_dir, obs_mode, wal_mode, transport_mode
):
    from conftest import emit  # pytest-only helper; keeps --check-obs stdlib

    stream = _stream()
    obs = obs_mode == "on"

    def run():
        rows = []
        base = max(
            measure_throughput(
                SheCountMin(WINDOW, SIZE, seed=7), stream, chunk=CHUNK,
                name="SHE-CM insert_many",
            ).mips
            for _ in range(BEST_OF)
        )
        rows.append(("single sketch", "-", "-", base))
        for shards in (1, 2, 4, 8):
            rows.append(
                (
                    f"engine serial x{shards}",
                    shards,
                    transport_mode,
                    _best_engine_mips(stream, shards, "serial", obs=obs,
                                      wal=wal_mode, transport=transport_mode),
                )
            )
        for shards in (2, 4):
            rows.append(
                (
                    f"engine process x{shards}",
                    shards,
                    transport_mode,
                    _best_engine_mips(
                        stream, shards, "process", num_workers=shards,
                        obs=obs, wal=wal_mode, transport=transport_mode,
                    ),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    header = (
        f"{'configuration':<24} {'shards':>6} {'transport':>9} {'Mips':>8}"
        f"   (obs {obs_mode}, wal {wal_mode}, best of {BEST_OF})"
    )
    lines = [header, "-" * len(header)]
    for name, shards, transport, mips in rows:
        lines.append(
            f"{name:<24} {shards!s:>6} {transport:>9} {mips:>8.2f}"
        )
    emit(results_dir, "bench_service", "\n".join(lines) + "\n")
    _write_bench_json(rows, obs_mode, extra={"wal_mode": wal_mode})

    by = {name: mips for name, _, _, mips in rows}
    # the serving layer must stay within a small factor of the raw sketch
    assert by["engine serial x1"] > by["single sketch"] / 5
    # sharding in-process must not collapse throughput
    assert by["engine serial x4"] > by["single sketch"] / 8


def check_obs_overhead(
    n_items: int = N_ITEMS, shards: int = 4, trials: int = 3
) -> int:
    """CI check mode: obs-on vs obs-off ingest throughput, no pytest.

    ``trials`` (>= 3) alternating repeats interleave the two modes so
    drift (thermal, noisy neighbours) hits both equally; we keep the
    best of each to compare steady-state cost, and report each mode's
    per-trial spread so a noisy run is visible in the output instead of
    silently poisoning the comparison.  The reported overhead is
    clamped at 0: a negative raw value just means obs-on won a coin
    flip within the machine's noise floor, not that instrumentation
    sped anything up.  The hard gate is deliberately placed on the
    *enabled* path — the disabled path is byte-for-byte the seed hot
    path plus no-op calls, so an off-regression would show up here as
    an on-regression too.
    """
    trials = max(trials, 3)
    stream = _stream(n_items)
    off_runs: list[float] = []
    on_runs: list[float] = []
    for _ in range(trials):
        off_runs.append(_engine_mips(stream, shards, "serial", obs=False))
        on_runs.append(_engine_mips(stream, shards, "serial", obs=True))
    off, on = max(off_runs), max(on_runs)
    off_spread = (max(off_runs) - min(off_runs)) / off * 100.0
    on_spread = (max(on_runs) - min(on_runs)) / on * 100.0
    raw_overhead_pct = (off - on) / off * 100.0
    overhead_pct = max(raw_overhead_pct, 0.0)
    noise_floor = raw_overhead_pct < 0.0
    print(
        f"obs off: {off:.2f} Mips  "
        f"(best of {trials}, spread {off_spread:.1f}%)"
    )
    print(
        f"obs on:  {on:.2f} Mips  "
        f"(best of {trials}, spread {on_spread:.1f}%)"
    )
    print(f"enabled-obs overhead: {overhead_pct:.2f}%")
    if noise_floor:
        print(
            f"note: raw overhead {raw_overhead_pct:.2f}% is negative — "
            "below the noise floor, reported as 0"
        )
    rows = [
        (f"engine serial x{shards} (obs off)", shards, "pickle", off),
        (f"engine serial x{shards} (obs on)", shards, "pickle", on),
    ]
    _write_bench_json(
        rows,
        "check",
        extra={
            "obs_overhead_pct": round(overhead_pct, 2),
            "obs_overhead_raw_pct": round(raw_overhead_pct, 2),
            "obs_overhead_below_noise_floor": noise_floor,
            "trials": trials,
            "off_mips_runs": [round(m, 3) for m in off_runs],
            "on_mips_runs": [round(m, 3) for m in on_runs],
            "off_spread_pct": round(off_spread, 2),
            "on_spread_pct": round(on_spread, 2),
        },
        n_items=n_items,
    )
    # generous CI-noise margin; locally this lands in low single digits
    limit = 15.0
    if overhead_pct > limit:
        print(f"FAIL: overhead {overhead_pct:.2f}% exceeds {limit}%")
        return 1
    if _shed_counter_smoke() != 0:
        return 1
    print("OK")
    return 0


def _shed_counter_smoke() -> int:
    """Overload accounting smoke: shed counters must reach /metrics.

    Drives a burst into a bounded engine with one shard pinned down
    under ``shed_oldest`` and checks that the registry-rendered shed
    totals match the stats snapshot and close the conservation
    identity — the admission-control path CI actually depends on.
    """
    cfg = EngineConfig(
        "cm", window=WINDOW, size=SIZE, num_shards=4,
        flush_batch_size=CHUNK, flush_interval_s=None,
        max_buffered_items=1024, overload_policy="shed_oldest",
        sketch_kwargs={"seed": 7},
    )
    eng = StreamEngine(cfg, obs=True)
    eng._down.add(0)
    stream = _stream(50_000)
    for lo in range(0, stream.size, 2048):
        eng.ingest(stream[lo:lo + 2048])
    snap = eng.stats_snapshot(tick=False)
    conserved = snap["items_ingested"] == (
        snap["items_flushed"] + snap["items_buffered"]
        + snap["items_shed"] + snap["items_retained_down"]
    )
    text = eng.obs.registry.render()
    exported = f"engine_items_shed_total {snap['items_shed']}" in text
    per_shard = 'engine_shard_items_shed_total{shard="0"}' in text
    print(
        f"shed smoke: shed={snap['items_shed']} conserved={conserved} "
        f"exported={exported and per_shard}"
    )
    if snap["items_shed"] <= 0 or not conserved or not exported or not per_shard:
        print("FAIL: shed accounting did not reach the metrics registry")
        return 1
    return 0


def check_windowed_overhead(
    n_items: int = N_ITEMS, shards: int = 4, trials: int = 3
) -> int:
    """CI gate mode: windowed-telemetry overhead on an obs-on engine.

    Same methodology as :func:`check_obs_overhead`, but the baseline is
    an *instrumented* engine (``Observability(enabled=True,
    telemetry=False)``) and the candidate adds the windowed layer — the
    stage latency recorder on the ingest/flush hot path plus the
    registry view (the view itself is scrape-driven, so the measured
    cost is the stage recorder's buffered ``observe`` calls).  Target
    is <= 2%; the hard gate leaves the usual CI-noise margin.  Results
    merge into ``BENCH_service.json`` under ``windowed_overhead``.
    """
    from repro.obs import Observability

    trials = max(trials, 3)
    stream = _stream(n_items)
    base_runs: list[float] = []
    tele_runs: list[float] = []
    for _ in range(trials):
        base_runs.append(_engine_mips(
            stream, shards, "serial",
            obs=Observability(enabled=True, telemetry=False),
        ))
        tele_runs.append(_engine_mips(
            stream, shards, "serial",
            obs=Observability(enabled=True, telemetry=True),
        ))
    base, tele = max(base_runs), max(tele_runs)
    raw_pct = (base - tele) / base * 100.0
    pct = max(raw_pct, 0.0)
    print(f"obs on, telemetry off: {base:.2f} Mips  (best of {trials})")
    print(f"obs on, telemetry on:  {tele:.2f} Mips  (best of {trials})")
    print(f"windowed-telemetry overhead: {pct:.2f}%  (target <= 2%)")
    if raw_pct < 0.0:
        print(
            f"note: raw overhead {raw_pct:.2f}% is negative — below the "
            "noise floor, reported as 0"
        )
    path = _REPO_ROOT / "BENCH_service.json"
    payload = (
        json.loads(path.read_text())
        if path.exists()
        else {"benchmark": "bench_service_throughput"}
    )
    payload["windowed_overhead"] = {
        "n_items": n_items,
        "shards": shards,
        "trials": trials,
        "base_mips_runs": [round(m, 3) for m in base_runs],
        "telemetry_mips_runs": [round(m, 3) for m in tele_runs],
        "overhead_pct": round(pct, 2),
        "overhead_raw_pct": round(raw_pct, 2),
        "target_pct": 2.0,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    # generous CI-noise margin; locally this lands well under the target
    limit = 15.0
    if pct > limit:
        print(f"FAIL: windowed overhead {pct:.2f}% exceeds {limit}%")
        return 1
    print("OK")
    return 0


def check_wal_overhead(
    n_items: int = N_ITEMS, shards: int = 4, trials: int = 3
) -> int:
    """CI gate mode: WAL-off vs logged ingest throughput, no pytest.

    Same methodology as :func:`check_obs_overhead` — alternating
    trials, best-of-N per mode, overhead clamped at 0 when the
    measurement is below the noise floor.  The gated number is the
    ``interval`` policy (the recommended production setting: one
    buffered write per batch, fsync on a timer); ``always`` pays a real
    fsync per batch, so its bound is far looser — it exists to catch a
    pathological regression (per-item syscalls), not to promise that
    synchronous durability is cheap.  Results merge into
    ``BENCH_service.json`` under ``wal_overhead`` so the trajectory
    file keeps the obs-check numbers alongside.
    """
    trials = max(trials, 3)
    stream = _stream(n_items)
    runs: dict[str, list[float]] = {"off": [], "interval": [], "always": []}
    for _ in range(trials):
        for mode in runs:
            runs[mode].append(
                _engine_mips(stream, shards, "serial", wal=mode)
            )
    best = {mode: max(vals) for mode, vals in runs.items()}
    overhead = {
        mode: max(0.0, (best["off"] - best[mode]) / best["off"] * 100.0)
        for mode in ("interval", "always")
    }
    print(f"wal off:      {best['off']:.2f} Mips  (best of {trials})")
    for mode in ("interval", "always"):
        print(
            f"wal {mode:<8} {best[mode]:.2f} Mips  "
            f"(overhead {overhead[mode]:.2f}%)"
        )
    path = _REPO_ROOT / "BENCH_service.json"
    payload = (
        json.loads(path.read_text())
        if path.exists()
        else {"benchmark": "bench_service_throughput"}
    )
    payload["wal_overhead"] = {
        "n_items": n_items,
        "shards": shards,
        "trials": trials,
        "mips": {m: round(v, 3) for m, v in best.items()},
        "mips_runs": {
            m: [round(x, 3) for x in vals] for m, vals in runs.items()
        },
        "overhead_pct": {m: round(v, 2) for m, v in overhead.items()},
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    limits = {"interval": 30.0, "always": 80.0}
    rc = 0
    for mode, limit in limits.items():
        if overhead[mode] > limit:
            print(
                f"FAIL: wal={mode} overhead {overhead[mode]:.2f}% "
                f"exceeds {limit}%"
            )
            rc = 1
    if rc == 0:
        print("OK")
    return rc


def check_transport(
    n_items: int = N_ITEMS, shards: int = 4, trials: int = 4,
    min_ratio: float = 1.8,
) -> int:
    """CI gate mode: shm vs pickle flush throughput on the process pool.

    The gated number is a *ratio*, so the methodology differs from the
    other check modes: machine-wide load on a shared CI box drifts
    between runs, and drift that hits only one side of the quotient
    shows up as gate noise.  The two transports are therefore measured
    in adjacent pairs (pickle then shm, back to back) after one
    unmeasured warmup pair, and the gate takes the best per-pair ratio
    — load drift that is slow relative to one pair cancels out of the
    quotient.  On the reference container the per-pair ratio has a
    median of ~1.9-2.0x and a best of 2.0-2.7x; the gate sits at 1.8x
    to leave noise margin below the typical measurement while still
    catching a real regression of the zero-copy path (a broken shm
    fast path collapses the ratio to ~1.0x).  Results merge into
    ``BENCH_service.json`` under ``transport`` with one row per
    transport plus the per-pair ratios.
    """
    trials = max(trials, 3)
    stream = _stream(n_items)
    for mode in ("pickle", "shm"):  # warmup pair: spawn pools, fault pages
        _engine_mips(stream, shards, "process", num_workers=shards, transport=mode)
    runs: dict[str, list[float]] = {"pickle": [], "shm": []}
    ratios: list[float] = []
    for _ in range(trials):
        pair = {}
        for mode in ("pickle", "shm"):
            pair[mode] = _engine_mips(
                stream, shards, "process", num_workers=shards,
                transport=mode,
            )
            runs[mode].append(pair[mode])
        ratios.append(pair["shm"] / pair["pickle"])
    best = {mode: max(vals) for mode, vals in runs.items()}
    ratio = max(ratios)
    for mode in ("pickle", "shm"):
        print(
            f"process x{shards}, transport {mode:<7} {best[mode]:.2f} Mips "
            f"(best of {trials})"
        )
    print(
        "shm/pickle per-pair ratios: "
        + " ".join(f"{r:.2f}" for r in ratios)
        + f"  -> best {ratio:.2f}x  (gate >= {min_ratio}x)"
    )
    path = _REPO_ROOT / "BENCH_service.json"
    payload = (
        json.loads(path.read_text())
        if path.exists()
        else {"benchmark": "bench_service_throughput"}
    )
    payload["transport"] = {
        "n_items": n_items,
        "shards": shards,
        "trials": trials,
        "methodology": (
            "adjacent pickle/shm pairs after one warmup pair; "
            "gate on best per-pair ratio"
        ),
        "rows": [
            {
                "configuration": f"engine process x{shards}",
                "shards": shards,
                "transport": mode,
                "mips": round(best[mode], 3),
                "mips_runs": [round(x, 3) for x in runs[mode]],
            }
            for mode in ("pickle", "shm")
        ],
        "ratio_runs": [round(r, 3) for r in ratios],
        "shm_over_pickle": round(ratio, 3),
        "min_ratio": min_ratio,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    if ratio < min_ratio:
        print(
            f"FAIL: shm transport is only {ratio:.2f}x the pickle "
            f"baseline (gate >= {min_ratio}x)"
        )
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    if "--check-obs" in sys.argv:
        rc = check_obs_overhead(n_items=200_000)
        sys.exit(rc if rc else check_windowed_overhead(n_items=200_000))
    if "--check-wal" in sys.argv:
        sys.exit(check_wal_overhead(n_items=200_000))
    if "--check-transport" in sys.argv:
        # 400k items: long enough runs that shm throughput is stable
        # (short ~0.1s runs swing +-20% under ambient load)
        sys.exit(check_transport(n_items=400_000))
    sys.exit(
        "usage: python bench_service_throughput.py "
        "--check-obs | --check-wal | --check-transport"
    )
