"""Fig. 7: the effect of the cleaning stretch alpha.

Paper shape: (a) the Eq.-2 optimal alpha tracks the best fixed choice
for SHE-BF across memories; (b) SHE-BM is insensitive within the
empirical 0.1-0.4 band.
"""

import numpy as np
from conftest import emit

from repro.harness import fig7a_bf_alpha, fig7b_bm_alpha


def test_fig7a_bf_alpha(benchmark, results_dir, bench_scale):
    result = benchmark.pedantic(lambda: fig7a_bf_alpha(bench_scale), rounds=1, iterations=1)
    emit(results_dir, "fig7a", result.table())
    by_label = {s.label: np.asarray(s.y, dtype=float) for s in result.series}
    opt = by_label["optimal"]
    # the optimal-alpha curve is never far above the best fixed curve
    others = np.vstack([v for k, v in by_label.items() if k != "optimal"])
    best_fixed = others.min(axis=0)
    assert np.all(opt <= 5 * best_fixed + 1e-4)


def test_fig7b_bm_alpha(benchmark, results_dir, bench_scale):
    result = benchmark.pedantic(lambda: fig7b_bm_alpha(bench_scale), rounds=1, iterations=1)
    emit(results_dir, "fig7b", result.table())
    # all three alphas give usable estimators at the largest memory
    for s in result.series:
        assert np.asarray(s.y, dtype=float)[-1] < 0.5
