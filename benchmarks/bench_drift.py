"""Drift detection-delay vs false-alarm-rate curves -> BENCH_drift.json.

Not a paper figure — this benchmarks the drift service the ROADMAP asks
for.  For every distance estimator (Jaccard / cardinality / frequency)
and every drift kind (stationary / abrupt / gradual / recurring), seeded
synthetic streams are scored once and a sweep of ``alarm_sigma``
thresholds replays each score series through fresh detectors, tracing
out the delay-vs-false-alarm tradeoff.  The machine-readable grid lands
in ``BENCH_drift.json`` at the repo root.

Run:  python benchmarks/bench_drift.py [--quick] [--out PATH]
"""

import argparse
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.applications.drift.eval import sweep  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small windows / fewer seeds and thresholds (CI smoke)",
    )
    parser.add_argument(
        "--out", default=str(_REPO_ROOT / "BENCH_drift.json"),
        help="output path (default: BENCH_drift.json at the repo root)",
    )
    args = parser.parse_args(argv)
    t0 = time.time()
    payload = sweep(args.out, quick=args.quick, verbose=True)
    n_points = sum(
        len(points)
        for by_drift in payload["curves"].values()
        for points in by_drift.values()
    )
    print(
        f"wrote {args.out}: {n_points} curve points "
        f"({time.time() - t0:.1f}s)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
